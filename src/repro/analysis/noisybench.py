"""E23: noisy-oracle hulls -- output error, vote overhead, validator power.

Three campaigns close the loop on the :mod:`repro.geometry.noisy` model
(Goodrich & Sridhar's noisy primitives), all JSON-shaped for
``BENCH_noisy.json`` (EXPERIMENTS.md E23, the ``noisy-smoke`` CI job,
``benchmarks/bench_noisy.py``, and ``repro noisy``):

``grid``
    *Raw* noisy runs (no ladder, no self-healing) over
    ``p x votes``: how wrong is the hull the lying oracle builds, and
    what does repetition cost?  Error is the facet-set distance against
    the exact oracle on the same insertion order (symmetric difference;
    Jaccard-normalized); overhead is mean votes per decision.  A lying
    oracle can also corrupt structural invariants outright -- those runs
    are recorded as ``crashed`` (error 1.0 by convention: nothing
    usable came out).  Each completed run's certificate verdict is
    recorded, feeding the validator-power measurement.

``ladder``
    The self-healing story: :func:`~repro.hull.robust.robust_hull` with
    ``noise=`` escalating ``votes -> 2k+1 -> adaptive -> exact``.  The
    claim measured: the *final* hull always matches the exact oracle,
    and the full escalation path is recorded.

``validator``
    Discriminating power of the independent certificate checker, the
    robustness claim this PR exists to prove: across
    ``corrupt_certificate`` modes x the degenerate corpus x seeds,
    *plus* certificates of genuinely noisy runs, the false-accept count
    (checker passes but the hull differs from the exact reference) must
    be 0 over >= 500 certificates in the full run.
"""

from __future__ import annotations

import time

import numpy as np

from ..geometry.degenerate import CORPUS
from ..geometry.noisy import ADAPTIVE, NoisyKernel
from ..geometry.perturb import sos_mode
from ..geometry.points import uniform_ball
from ..hull.certify import (
    CORRUPTION_MODES,
    CertificateError,
    corrupt_certificate,
    make_certificate,
    verify_certificate,
)
from ..hull.parallel import parallel_hull
from ..hull.robust import robust_hull

__all__ = ["run_noisy_bench", "facet_distance", "NOISY_BENCH_SCHEMA"]

NOISY_BENCH_SCHEMA = "repro.bench.noisy/1"

#: The paper-grid axes measured by the full campaign.
GRID_PS = (0.001, 0.01, 0.05, 0.1)
GRID_VOTES = (1, 3, 5, ADAPTIVE)


def facet_distance(a: set, b: set) -> dict:
    """Facet-set distance between two hulls (keys as from
    ``facet_keys()``): symmetric difference, union, and the Jaccard
    distance ``|A ^ B| / |A u B|`` (0 = identical, 1 = disjoint)."""
    sym = len(a ^ b)
    union = len(a | b)
    return {
        "sym_diff": sym,
        "union": union,
        "jaccard": sym / union if union else 0.0,
    }


def _grid_row(p: float, votes, ref, seed: int) -> dict:
    """One raw (ladder-free) noisy run against the exact reference."""
    nk = NoisyKernel(p=p, votes=votes, seed=seed)
    order = ref.order.copy()
    # Re-feed the reference's already-permuted points in their insertion
    # order so both runs insert identically (ref.points is rank-ordered).
    row: dict = {"p": p, "votes": votes, "seed": seed}
    t0 = time.perf_counter()
    try:
        run = parallel_hull(ref.points, order=np.arange(len(order)), kernel=nk)
    except Exception as exc:
        row.update({
            "crashed": True, "crash_type": type(exc).__name__,
            "error": 1.0, "sym_diff": None,
            "vote_overhead": nk.vote_overhead(),
            "decisions": nk.decisions,
            "certificate": "unavailable",
            "wall_s": time.perf_counter() - t0,
        })
        return row
    wall = time.perf_counter() - t0
    dist = facet_distance(run.facet_keys(), ref.facet_keys())
    cert_verdict = "ok"
    try:
        verify_certificate(make_certificate(run, "noisy"), run.points)
    except CertificateError:
        cert_verdict = "rejected"
    row.update({
        "crashed": False,
        "error": dist["jaccard"],
        "sym_diff": dist["sym_diff"],
        "hull_facets": len(run.facets),
        "ref_facets": len(ref.facets),
        "vote_overhead": nk.vote_overhead(),
        "decisions": nk.decisions,
        "flips": nk.flips,
        "residual_errors": nk.overruled,
        "certificate": cert_verdict,
        "wall_s": wall,
    })
    return row


def _ladder_row(p: float, votes, ref, seed: int) -> dict:
    """One certificate-gated self-healing run: noisy rungs then exact."""
    nk = NoisyKernel(p=p, votes=votes, seed=seed)
    t0 = time.perf_counter()
    # Same insertion order as the reference (ref.points is already
    # rank-ordered), so facet keys live in the same rank space.
    res = robust_hull(
        ref.points, seed=seed, order=np.arange(ref.points.shape[0]), noise=nk
    )
    return {
        "p": p,
        "votes": votes,
        "seed": seed,
        "mode": res.mode,
        "escalations": res.escalations,
        "matches_exact": res.run.facet_keys() == ref.facet_keys(),
        "vote_overhead": (res.noise.vote_overhead() if res.noise else None),
        "wall_s": time.perf_counter() - t0,
    }


def _validator_corrupted(seeds: range) -> dict:
    """Corruption sweep: every ``corrupt_certificate`` mode against a
    valid certificate of every degenerate-corpus family."""
    checked = 0
    rejected = 0
    false_accepts: list[dict] = []
    for name in sorted(CORPUS):
        for seed in seeds:
            pts = CORPUS[name](seed=seed)
            res = robust_hull(pts, seed=seed)
            cert = res.certificate
            ref_points = pts
            if res.joggled is not None:
                ref_points = np.empty_like(res.run.points)
                ref_points[res.run.order] = res.run.points
            for mode in CORRUPTION_MODES:
                bad = corrupt_certificate(cert, mode, seed=seed)
                checked += 1
                try:
                    verify_certificate(bad, ref_points)
                except CertificateError:
                    rejected += 1
                else:
                    false_accepts.append(
                        {"family": name, "seed": seed, "mode": mode}
                    )
    return {
        "checked": checked,
        "rejected": rejected,
        "false_accepts": false_accepts,
    }


def _validator_noisy(ps, seeds: range) -> dict:
    """Genuinely noisy corpus runs (votes=1, under SoS so degenerate
    families build at all) driven through the checker.  A false accept
    = the checker passes but the hull differs from the noise-free
    reference on the same order -- the one outcome that must not occur."""
    checked = 0
    rejected = 0
    crashed = 0
    clean_accepts = 0
    false_accepts: list[dict] = []
    for name in sorted(CORPUS):
        for seed in seeds:
            pts = CORPUS[name](seed=seed)
            with sos_mode():
                try:
                    ref = parallel_hull(pts, seed=seed)
                except Exception:
                    continue  # family needs a rung SoS can't give: skip
                for p in ps:
                    nk = NoisyKernel(p=p, votes=1, seed=seed + 1)
                    try:
                        run = parallel_hull(
                            ref.points, order=np.arange(len(ref.order)),
                            kernel=nk,
                        )
                    except Exception:
                        crashed += 1
                        continue  # no certificate to check
                    checked += 1
                    wrong = run.facet_keys() != ref.facet_keys()
                    try:
                        verify_certificate(
                            make_certificate(run, "noisy"), run.points
                        )
                    except CertificateError:
                        rejected += 1
                    else:
                        if wrong:
                            false_accepts.append(
                                {"family": name, "seed": seed, "p": p}
                            )
                        else:
                            clean_accepts += 1
    return {
        "checked": checked,
        "rejected": rejected,
        "crashed_runs": crashed,
        "clean_accepts": clean_accepts,
        "false_accepts": false_accepts,
    }


def run_noisy_bench(seed: int = 0, smoke: bool = False) -> dict:
    """Run the E23 campaign and return the ``BENCH_noisy.json`` dict.

    ``smoke=True`` shrinks everything for CI (harness correctness, not
    meaningful statistics); the full run covers the paper grid and the
    >= 500-certificate validator-power criterion.
    """
    if smoke:
        n, d = 40, 3
        ps = (0.01, 0.1)
        votes = (1, 3, ADAPTIVE)
        grid_seeds = range(seed, seed + 1)
        corrupt_seeds = range(seed, seed + 1)
        noisy_seeds = range(seed, seed + 1)
        noisy_ps = (0.1,)
    else:
        n, d = 120, 3
        ps = GRID_PS
        votes = GRID_VOTES
        grid_seeds = range(seed, seed + 3)
        # 12 families x 10 seeds x 4 corruption modes = 480 corrupted
        # certificates; the noisy sweep supplies the rest of the >=500.
        corrupt_seeds = range(seed, seed + 10)
        noisy_seeds = range(seed, seed + 2)
        noisy_ps = (0.05, 0.1)

    pts = uniform_ball(n, d, seed=seed + 11)
    ref = parallel_hull(pts, seed=seed + 1)

    grid = [
        _grid_row(p, v, ref, s)
        for p in ps for v in votes for s in grid_seeds
    ]
    ladder = [
        _ladder_row(p, 1, ref, s) for p in ps for s in grid_seeds
    ]
    corrupted = _validator_corrupted(corrupt_seeds)
    noisy_certs = _validator_noisy(noisy_ps, noisy_seeds)

    total_checked = corrupted["checked"] + noisy_certs["checked"]
    total_false = (
        len(corrupted["false_accepts"]) + len(noisy_certs["false_accepts"])
    )
    summary = {
        "all_ladder_runs_match_exact": all(r["matches_exact"] for r in ladder),
        "validator_certificates_checked": total_checked,
        "validator_false_accepts": total_false,
        "validator_false_accept_rate": total_false / max(1, total_checked),
        "criterion_500_certs": total_checked >= 500,
        # error-vs-p at votes=1 and overhead-vs-votes at the highest p:
        # the two trajectories the E23 tables plot.
        "error_vs_p_votes1": {
            str(p): float(np.mean([
                r["error"] for r in grid if r["p"] == p and r["votes"] == 1
            ]))
            for p in ps
        },
        "overhead_vs_votes_maxp": {
            str(v): float(np.mean([
                r["vote_overhead"] for r in grid
                if r["votes"] == v and r["p"] == max(ps)
            ]))
            for v in votes
        },
    }
    return {
        "schema": NOISY_BENCH_SCHEMA,
        "smoke": smoke,
        "seed": seed,
        "n": n,
        "d": d,
        "ps": list(ps),
        "votes": [str(v) for v in votes],
        "grid": grid,
        "ladder": ladder,
        "validator": {"corrupted": corrupted, "noisy": noisy_certs},
        "summary": summary,
    }
