"""Backwards analysis of a single dependence path (the proof engine of
Theorem 4.2).

The proof tracks one active configuration while objects are removed in
random order: when the removed object ``x_i`` is in the tracked
configuration's defining set, the path extends by one step into a
member of its support set (probability <= g/i); otherwise the tracked
configuration survives.  Summing gives ``E[L] <= g * H_n``, and the
Chernoff argument yields the tail.

This module *executes* that random process on concrete hull instances:
it removes points one at a time (maintaining exact active sets via the
brute-force space for small n, or the facet structure recomputed per
step for the hull), tracks a path, and returns per-run path lengths and
per-step extension indicators -- letting the tests check each piece of
the proof empirically:

* the per-step extension probability is <= g/i;
* the mean path length is <= g * H_n;
* the empirical tail is dominated by the Chernoff form.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..configspace.base import Config, ConfigurationSpace
from ..configspace.support import find_support_set
from ..configspace.theory import harmonic

__all__ = ["BackwardsRun", "backwards_path", "backwards_campaign"]


@dataclass
class BackwardsRun:
    """One execution of the proof's backwards process."""

    n: int
    length: int                       # L: number of path extensions
    extended_at: list = field(default_factory=list)   # steps i where it extended
    degrees: list = field(default_factory=list)       # |D(pi_i)| at each step


def backwards_path(
    space: ConfigurationSpace,
    objects: list[int],
    seed: int,
    start: Config | None = None,
) -> BackwardsRun:
    """Run the backwards process once.

    Removes a uniformly random object per step (from ``seed``); when the
    removal hits the tracked configuration's defining set, steps to an
    arbitrary member of a support set found in the new active set (per
    the proof, one exists for spaces with k-support).
    """
    rng = np.random.default_rng(seed)
    remaining = list(objects)
    n = len(remaining)
    active = space.active_set(remaining)
    if not active:
        raise ValueError("no active configurations to track")
    tracked = start if start is not None else sorted(
        active, key=lambda c: (sorted(c.defining), str(c.tag))
    )[0]
    if tracked not in active:
        raise ValueError("start configuration is not active")
    run = BackwardsRun(n=n, length=0)

    for i in range(n, space.base_size, -1):
        x = remaining[int(rng.integers(0, len(remaining)))]
        remaining.remove(x)
        run.degrees.append(len(tracked.defining))
        if x not in tracked.defining:
            continue
        # The tracked configuration dies; follow a support edge.
        new_active = space.active_set(remaining)
        phi = space.find_support(new_active, tracked, x)
        if phi is None or not set(phi) <= new_active:
            phi = find_support_set(new_active, tracked, x, space.support_k)
        if phi is None:
            # Below base size or boundary corner case: stop the path.
            break
        run.length += 1
        run.extended_at.append(i)
        tracked = sorted(phi, key=lambda c: (sorted(c.defining), str(c.tag)))[0]
    return run


def backwards_campaign(
    space: ConfigurationSpace,
    objects: list[int],
    trials: int,
    seed: int = 0,
) -> dict:
    """Many backwards runs; summary statistics against the proof's
    bounds."""
    lengths = []
    extension_steps: dict[int, int] = {}
    for t in range(trials):
        run = backwards_path(space, list(objects), seed=seed + t)
        lengths.append(run.length)
        for i in run.extended_at:
            extension_steps[i] = extension_steps.get(i, 0) + 1
    n = len(objects)
    g = space.degree
    return {
        "n": n,
        "g": g,
        "trials": trials,
        "mean_length": float(np.mean(lengths)),
        "max_length": int(np.max(lengths)),
        "bound_gHn": g * harmonic(n),
        "lengths": lengths,
        "extension_rate_by_step": {
            i: c / trials for i, c in sorted(extension_steps.items())
        },
    }
