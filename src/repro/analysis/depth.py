"""Dependence-depth measurement campaigns (experiments E1/E3).

Runs the parallel hull (or any depth-producing callable) across sizes
and seeds, aggregates depth statistics, fits the ``depth / ln n`` ratio,
and compares the empirical tail against the Theorem 4.2 bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..configspace.theory import harmonic
from ..geometry.points import on_sphere, uniform_ball
from ..hull.parallel import parallel_hull

__all__ = ["DepthSample", "DepthCampaign", "measure_hull_depths", "fit_log_slope"]


@dataclass
class DepthSample:
    """Depth measurements at one problem size."""

    n: int
    depths: list[int] = field(default_factory=list)
    rounds: list[int] = field(default_factory=list)

    @property
    def mean_depth(self) -> float:
        return float(np.mean(self.depths))

    @property
    def max_depth(self) -> int:
        return max(self.depths)

    @property
    def depth_over_harmonic(self) -> float:
        """Mean depth / H_n -- the empirical sigma of Theorem 4.2."""
        return self.mean_depth / harmonic(self.n)


@dataclass
class DepthCampaign:
    samples: list[DepthSample]

    def table(self) -> list[dict]:
        return [
            {
                "n": s.n,
                "mean_depth": round(s.mean_depth, 2),
                "max_depth": s.max_depth,
                "H_n": round(harmonic(s.n), 2),
                "depth/H_n": round(s.depth_over_harmonic, 3),
                "mean_rounds": round(float(np.mean(s.rounds)), 2) if s.rounds else None,
            }
            for s in self.samples
        ]

    def log_slope(self) -> float:
        """Least-squares slope of mean depth against ln n -- must
        flatten to a constant if depth is Theta(log n)."""
        ns = np.array([s.n for s in self.samples], dtype=float)
        ds = np.array([s.mean_depth for s in self.samples])
        return fit_log_slope(ns, ds)

    def sigma_stable(self, rel_tol: float = 0.5) -> bool:
        """Is the empirical sigma (depth / H_n) roughly constant across
        sizes?  A super-logarithmic depth would make it grow steadily."""
        sigmas = [s.depth_over_harmonic for s in self.samples]
        return (max(sigmas) - min(sigmas)) <= rel_tol * float(np.mean(sigmas))


def fit_log_slope(ns: np.ndarray, values: np.ndarray) -> float:
    """Slope a of the least-squares fit ``values ~ a * ln(n) + b``."""
    x = np.log(np.asarray(ns, dtype=float))
    a, _b = np.polyfit(x, np.asarray(values, dtype=float), 1)
    return float(a)


def measure_hull_depths(
    ns: Sequence[int],
    d: int,
    seeds: Sequence[int],
    generator: Callable[[int, int, int], np.ndarray] | None = None,
) -> DepthCampaign:
    """Run the parallel hull over a grid of sizes x seeds and collect
    dependence depths and round counts.

    ``generator(n, d, seed)`` defaults to the unit-ball workload; use
    :func:`repro.geometry.on_sphere` for the all-extreme regime.
    """
    gen = generator or uniform_ball
    samples = []
    for n in ns:
        sample = DepthSample(n=n)
        for seed in seeds:
            pts = gen(n, d, seed)
            run = parallel_hull(pts, seed=seed * 7919 + 13)
            sample.depths.append(run.dependence_depth())
            sample.rounds.append(run.exec_stats.rounds)
        samples.append(sample)
    return DepthCampaign(samples=samples)
