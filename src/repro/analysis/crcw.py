"""CRCW PRAM span accounting for a parallel hull run (Theorem 5.4).

Theorem 5.4 charges each of the O(log n) rounds of Algorithm 3
O(log* n) span: hash-table updates for the ridge map [39], O(1)-whp
minimum finding [60], and approximate compaction for the conflict-set
filters [41].  This module replays a recorded
:class:`~repro.hull.parallel.ParallelHullRun` against the executable
primitives in :mod:`repro.runtime.pram`, producing a *measured* span:

* per round, the ridge registrations are actually inserted into a
  :class:`ParallelHashTable` (measured rounds, ~log log n at constant
  load);
* the round's largest conflict set goes through :func:`pram_min`
  (measured rounds, O(1) expected);
* the filter/compaction charge is taken either as the executable exact
  scan (O(log n) rounds -- the conservative, fully-implemented variant)
  or as the literature's O(log* n) approximate compaction (modelled),
  selected by ``compaction``.

The result lets EXPERIMENTS.md report an end-to-end measured CRCW span
and compare it against the O(log n log* n) claim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..runtime.pram import PRAM, ParallelHashTable, log_star, pram_min, prefix_sum

__all__ = ["CRCWSpanReport", "crcw_span"]


@dataclass
class CRCWSpanReport:
    n: int
    algorithm_rounds: int
    span_rounds: int
    work_ops: int
    compaction: str

    @property
    def span_per_round(self) -> float:
        return self.span_rounds / max(1, self.algorithm_rounds)

    def normalized(self) -> float:
        """Measured span / (log2 n * charge(n)) where charge is log* n
        for approximate compaction and log2 n for the exact scan --
        flat-in-n iff the Theorem 5.4 shape holds."""
        charge = log_star(self.n) if self.compaction == "approximate" else math.log2(self.n)
        return self.span_rounds / (math.log2(self.n) * max(1.0, charge))


def crcw_span(run, compaction: str = "approximate", seed: int = 0) -> CRCWSpanReport:
    """Measure the CRCW span of a recorded parallel hull run.

    ``run`` must come from the round-synchronous executor (its events
    carry round numbers).  ``compaction`` is ``"approximate"`` (charge
    the [41] model cost log* n) or ``"exact"`` (execute the prefix-sum
    scan on the round's largest filter).
    """
    if compaction not in ("approximate", "exact"):
        raise ValueError("compaction must be 'approximate' or 'exact'")
    n = int(run.points.shape[0])
    rng = np.random.default_rng(seed)
    by_fid = {f.fid: f for f in run.created}

    rounds = max((e.round for e in run.events), default=-1) + 1
    pram = PRAM()
    for rnd in range(rounds):
        creates = [e for e in run.events if e.round == rnd and e.kind == "create"]
        # 1. Ridge registrations of this round into a fresh hash table
        #    (the real algorithm uses one table; per-round tables only
        #    make the measured cost *larger*, so the bound stays safe).
        d = run.points.shape[1]
        m = max(1, len(creates) * d)
        table = ParallelHashTable(capacity=4 * m, seed=seed + rnd)
        table.insert_all(pram, np.arange(m) + 1)
        # 2. Conflict pivot: minimum of the round's largest conflict set.
        conflict_sizes = [
            by_fid[e.created].conflicts.size + 1 for e in creates
        ] or [1]
        biggest = max(conflict_sizes)
        pram_min(pram, rng.integers(0, 2**31, size=biggest), rng)
        # 3. Filtering / compaction of the largest candidate set.
        if compaction == "exact":
            prefix_sum(pram, np.ones(biggest, dtype=np.int64))
        else:
            for _ in range(max(1, log_star(biggest))):
                pram.step(biggest, "compact:approx")
    return CRCWSpanReport(
        n=n,
        algorithm_rounds=rounds,
        span_rounds=pram.rounds,
        work_ops=pram.work,
        compaction=compaction,
    )
