"""Work accounting (experiments E2/E6) and speedup analysis (E13).

Theorem 5.4 states the parallel algorithm performs the *same* visibility
tests as the sequential one (minus those skipped by buried ridges), for
O(n log n) expected work in d <= 3.  These helpers run the two
algorithms under a shared insertion order and compare their counters,
and turn a run's work-span log into simulated speedup curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..hull.parallel import ParallelHullRun, parallel_hull
from ..hull.sequential import SequentialHullResult, sequential_hull

__all__ = ["WorkComparison", "compare_work", "work_scaling", "speedup_table"]


@dataclass
class WorkComparison:
    """Sequential vs parallel work on one instance, same insertion order."""

    n: int
    d: int
    seq: SequentialHullResult
    par: ParallelHullRun

    @property
    def same_facets(self) -> bool:
        return self.seq.facet_keys() == self.par.facet_keys()

    @property
    def same_created(self) -> bool:
        return self.seq.created_keys() == self.par.created_keys()

    @property
    def test_ratio(self) -> float:
        """Parallel visibility tests / sequential (<= 1 + o(1); buried
        ridges can only *save* tests)."""
        return self.par.counters.visibility_tests / max(
            1, self.seq.counters.visibility_tests
        )

    def row(self) -> dict:
        return {
            "n": self.n,
            "d": self.d,
            "seq_tests": self.seq.counters.visibility_tests,
            "par_tests": self.par.counters.visibility_tests,
            "ratio": round(self.test_ratio, 4),
            "same_facets": self.same_facets,
            "same_created": self.same_created,
            "buried": self.par.counters.facets_buried,
        }


def compare_work(points: np.ndarray, seed: int = 0) -> WorkComparison:
    """Run both algorithms under one random insertion order."""
    n, d = points.shape
    order = np.random.default_rng(seed).permutation(n)
    seq = sequential_hull(points, order=order.copy())
    par = parallel_hull(points, order=order.copy())
    return WorkComparison(n=n, d=d, seq=seq, par=par)


def work_scaling(
    ns: Sequence[int], d: int, generator, seed: int = 0
) -> list[dict]:
    """Visibility tests per n log n across sizes -- flat iff the work is
    Theta(n log n) (the d <= 3 regime of Theorem 5.4)."""
    rows = []
    for n in ns:
        pts = generator(n, d, seed)
        cmpn = compare_work(pts, seed=seed + n)
        row = cmpn.row()
        row["tests_per_nlogn"] = round(
            cmpn.seq.counters.visibility_tests / (n * np.log(n)), 3
        )
        rows.append(row)
    return rows


def speedup_table(run: ParallelHullRun, processors: Sequence[int]) -> list[dict]:
    """Speedups from a parallel run's work-span log, two ways:

    * ``speedup``: exact greedy list-schedule with *non-malleable*
      tasks (a whole conflict-set filter occupies one processor) --
      pessimistic, capped by W / max-task-cost;
    * ``model_speedup``: W / (W/P + S) with the paper's span model,
      where the inner filter/min steps are internally parallel
      (Theorem 5.5's regime).
    """
    tracker = run.tracker
    w = tracker.work
    rows = []
    for p in processors:
        sched = tracker.simulate_greedy(p)
        rows.append(
            {
                "P": p,
                "T_P": sched.makespan,
                "speedup": round(w / sched.makespan, 2),
                "model_speedup": round(tracker.brent_speedup(p), 2),
                "brent_T_P": round(tracker.brent_bound(p), 1),
                "utilisation": round(sched.utilisation, 3),
            }
        )
    return rows
