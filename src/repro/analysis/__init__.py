"""Measurement campaigns over the algorithms: dependence-depth scaling,
work accounting, and simulated speedup curves."""

from .crcw import CRCWSpanReport, crcw_span
from .depth import DepthCampaign, DepthSample, fit_log_slope, measure_hull_depths
from .kernelbench import KERNEL_BENCH_SCHEMA, run_kernel_bench
from .noisybench import NOISY_BENCH_SCHEMA, facet_distance, run_noisy_bench
from .work import WorkComparison, compare_work, speedup_table, work_scaling

__all__ = [
    "CRCWSpanReport",
    "crcw_span",
    "KERNEL_BENCH_SCHEMA",
    "run_kernel_bench",
    "NOISY_BENCH_SCHEMA",
    "facet_distance",
    "run_noisy_bench",
    "DepthCampaign",
    "DepthSample",
    "fit_log_slope",
    "measure_hull_depths",
    "WorkComparison",
    "compare_work",
    "speedup_table",
    "work_scaling",
]
