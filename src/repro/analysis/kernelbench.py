"""E19: batched predicate kernels vs the scalar oracle.

The batched kernel (:mod:`repro.geometry.kernels`) claims two things:
bit-identical signs to the scalar path, and a large constant-factor
speedup on the visibility tests that dominate hull work.  This module
measures the second claim (the first is the differential suite's job,
but every measurement here re-asserts agreement anyway): for each
``(n, d)`` it times three engines deciding the *same* (facet x
candidate) visibility block --

``scalar``
    one :meth:`~repro.geometry.hyperplane.Hyperplane.side` call per
    (facet, point) pair: the per-call oracle the predicates are
    specified against;
``masked``
    one :meth:`~repro.geometry.hyperplane.Hyperplane.visible_mask`
    call per facet: the pre-existing per-facet vectorized path;
``batch``
    one :meth:`~repro.geometry.kernels.BatchKernel.visible_blocks`
    sweep for the whole ragged block.

and reports median wall times, speedups, and the filter-fallback rate
(the fraction of signs the float envelope could not certify).  An
end-to-end section runs ``sequential_hull`` under both ``kernel=``
engines along an ``n`` trajectory (2e3 / 2e4 / 1e5 in the full run),
checking facet-set equality and recording the batch/scalar ratio per
``n`` -- the number the hot-path analyzer's findings have to explain.

Results are JSON-shaped for ``BENCH_kernels.json`` (consumed by
EXPERIMENTS.md's E19 table and the ``kernels-smoke`` CI job via
``benchmarks/bench_kernels.py`` or ``repro bench-kernels``).
"""

from __future__ import annotations

import gc
import time
from statistics import median
from typing import Sequence

import numpy as np

from ..geometry.hyperplane import Hyperplane
from ..geometry.kernels import BatchKernel
from ..geometry.points import uniform_ball
from ..hull.sequential import sequential_hull
from ..hull.soa import soa_hull

__all__ = ["run_kernel_bench", "KERNEL_BENCH_SCHEMA"]

KERNEL_BENCH_SCHEMA = "repro.bench.kernels/1"


def _facet_specs(
    pts: np.ndarray, n_facets: int, rng: np.random.Generator
) -> tuple[list[Hyperplane], list[tuple[int, ...]], list[np.ndarray]]:
    """Build ``n_facets`` well-defined planes through random d-subsets,
    each tested against every other point -- the dense analogue of the
    hull's ragged conflict blocks.

    The RPRHOT suppressions here and in ``_predicate_row`` are the
    measurement harness itself: the scalar closures *time* the
    per-element path on purpose, and the raw sweeps are stopwatch
    material, not hull work the span accounting should see.
    """
    n, d = pts.shape
    interior = pts.mean(axis=0)
    planes: list[Hyperplane] = []
    idx_list: list[tuple[int, ...]] = []
    cand_list: list[np.ndarray] = []
    everything = np.arange(n, dtype=np.int64)
    while len(planes) < n_facets:
        idx = tuple(sorted(int(i) for i in rng.choice(n, size=d, replace=False)))
        try:
            plane = Hyperplane.through(pts[list(idx)], interior, indices=idx)  # repro: noqa: RPRHOT002
        except ValueError:
            continue  # interior exactly on the plane: redraw
        if plane.always_exact:
            continue  # degenerate draw would bench the exact path only
        keep = np.ones(n, dtype=bool)  # repro: noqa: RPRHOT003
        keep[list(idx)] = False
        planes.append(plane)  # repro: noqa: RPRHOT003
        idx_list.append(idx)
        cand_list.append(everything[keep])  # repro: noqa: RPRHOT003
    return planes, idx_list, cand_list


def _time(fn, repeats: int) -> tuple[float, object]:
    """Median wall time of ``fn`` over ``repeats`` runs, plus its last
    return value.

    Cyclic collection is drained *before* and disabled *during* each
    run: the object-driver engines leave millions of dead ``Facet``
    objects behind, and without the fence their collection bill lands
    in whichever engine happens to be on the stopwatch next."""
    times = []
    out = None
    for _ in range(repeats):
        gc.collect()
        was_enabled = gc.isenabled()
        gc.disable()
        try:
            t0 = time.perf_counter()
            out = fn()
            times.append(time.perf_counter() - t0)
        finally:
            if was_enabled:
                gc.enable()
    return float(median(times)), out


def _predicate_row(
    n: int, d: int, n_facets: int, repeats: int, seed: int
) -> dict:
    rng = np.random.default_rng(seed)
    pts = uniform_ball(n, d, seed=seed)
    planes, idx_list, cand_list = _facet_specs(pts, n_facets, rng)
    tests = sum(int(c.size) for c in cand_list)

    def scalar() -> list[np.ndarray]:
        out = []
        for plane, cands in zip(planes, cand_list):  # repro: noqa: RPRHOT001
            out.append(
                np.array([plane.side(pts[r], int(r)) > 0 for r in cands], dtype=bool)  # repro: noqa: RPRHOT002, RPRHOT003
            )
        return out

    def masked() -> list[np.ndarray]:
        return [
            plane.visible_mask(pts[cands], indices=cands)  # repro: noqa: RPRHOT002
            for plane, cands in zip(planes, cand_list)
        ]

    def batch() -> list[np.ndarray]:
        # Fresh cache-less kernel per run: timings measure the sweep,
        # not cache replay of the previous repeat.
        kern = BatchKernel(pts, cache=False)
        return kern.visible_blocks(planes, idx_list, cand_list)  # repro: noqa: RPRHOT006

    scalar_s, scalar_masks = _time(scalar, repeats)
    masked_s, masked_masks = _time(masked, repeats)
    batch_s, batch_masks = _time(batch, repeats)

    for a, b, c in zip(scalar_masks, masked_masks, batch_masks):
        if not (np.array_equal(a, b) and np.array_equal(a, c)):
            raise AssertionError(f"engine disagreement at n={n} d={d}")

    # Fallback + cache statistics from one instrumented cached sweep.
    kern = BatchKernel(pts, cache=True)
    kern.visible_blocks(planes, idx_list, cand_list)  # repro: noqa: RPRHOT006
    kern.visible_blocks(planes, idx_list, cand_list)  # repro: noqa: RPRHOT006 (pure cache replay)
    snap = kern.snapshot()
    cache = kern.cache.snapshot() if kern.cache is not None else {}
    return {
        "n": n,
        "d": d,
        "facets": len(planes),
        "tests": tests,
        "scalar_s": scalar_s,
        "masked_s": masked_s,
        "batch_s": batch_s,
        "speedup_vs_scalar": scalar_s / batch_s if batch_s else float("inf"),
        "speedup_vs_masked": masked_s / batch_s if batch_s else float("inf"),
        "fallbacks": snap["fallbacks"],
        "fallback_rate": snap["fallbacks"] / max(1, snap["batched_signs"]),
        "cache_hits": cache.get("cache_hits", 0),
        "cache_misses": cache.get("cache_misses", 0),
    }


def _hull_row(n: int, d: int, repeats: int, seed: int) -> dict:
    """One end-to-end point of the hull trajectory.

    Large instances get one repeat: a full ``sequential_hull`` at
    ``n=1e5, d=3`` runs ~15 s per engine, and the trajectory's job is
    the *trend* of the batch/scalar ratio across n (does the per-facet
    driver overhead wash out as sweeps grow?), not a tight median.
    Each point also times the conflict-list SoA engine
    (:func:`~repro.hull.soa.soa_hull`) on the identical instance -- the
    ``hull_end_to_end_soa`` trajectory -- and asserts its facet set
    matches both object-driver engines."""
    repeats = repeats if n < 10_000 else 1
    pts = uniform_ball(n, d, seed=seed + 17)
    order = np.random.default_rng(seed).permutation(n)

    scalar_s, scalar_res = _time(
        lambda: sequential_hull(pts, order=order.copy(), kernel="scalar"), repeats
    )
    batch_s, batch_res = _time(
        lambda: sequential_hull(pts, order=order.copy(), kernel="batch"), repeats
    )
    soa_s, soa_res = _time(
        lambda: soa_hull(pts, order=order.copy(), kernel="batch"), repeats
    )
    keys = scalar_res.facet_keys()
    return {
        "n": n,
        "d": d,
        "repeats": repeats,
        "scalar_s": scalar_s,
        "batch_s": batch_s,
        "soa_s": soa_s,
        "speedup": scalar_s / batch_s if batch_s else float("inf"),
        "soa_speedup": scalar_s / soa_s if soa_s else float("inf"),
        "same_facets": keys == batch_res.facet_keys()
        and keys == soa_res.facet_keys(),
        "hull_facets": len(keys),
    }


def _soa_contained(run, sample: int, seed: int) -> bool:
    """Float-sound containment spot check for instances too large to
    cross-check against the scalar oracle: no sampled input point may be
    *certainly* outside any live facet's plane (margin beyond the
    facet's own error envelope)."""
    eng = run.engine
    store = eng.store
    live = np.nonzero(store.alive[: store.size])[0]
    rng = np.random.default_rng(seed)
    picks = rng.choice(run.points.shape[0], size=min(sample, run.points.shape[0]),
                       replace=False)
    q = run.points[picks]
    margins = q @ store.normals[live].T - store.offsets[live]
    env = store.err_scale[live] * (
        store.err_base[live] + np.abs(q).max(axis=1)[:, None]
    )
    return bool(np.all(margins <= env))


def _soa_only_row(n: int, d: int, seed: int, sample: int = 20_000) -> dict:
    """The trajectory's far point (``n = 1e6``): the scalar oracle is
    intractable here (hours), so ``scalar_s`` is ``None`` and
    correctness is a sampled containment check instead of a facet-set
    diff -- the 5x acceptance criterion is evaluated at ``n = 1e5``
    where the oracle still runs."""
    pts = uniform_ball(n, d, seed=seed + 17)
    order = np.random.default_rng(seed).permutation(n)
    soa_s, res = _time(
        lambda: soa_hull(pts, order=order.copy(), kernel="batch"), 1
    )
    return {
        "n": n,
        "d": d,
        "repeats": 1,
        "scalar_s": None,
        "batch_s": None,
        "soa_s": soa_s,
        "speedup": None,
        "soa_speedup": None,
        "same_facets": None,
        "sampled_containment": _soa_contained(res, sample, seed + 1),
        "hull_facets": len(res.facets),
        "rounds": res.exec_stats.rounds,
        "visibility_tests": res.counters.visibility_tests,
    }


def run_kernel_bench(
    ns: Sequence[int] | None = None,
    ds: Sequence[int] = (2, 3),
    hull_ns: Sequence[int] | None = None,
    n_facets: int = 24,
    repeats: int = 3,
    seed: int = 0,
    smoke: bool = False,
) -> dict:
    """Run the E19 campaign and return the ``BENCH_kernels.json`` dict.

    ``smoke=True`` shrinks sizes/repeats for CI (correctness of the
    harness, not meaningful timings).  The full run covers ``n >= 1e4``
    where the acceptance criterion (batched >= 3x scalar median
    speedup on visibility testing) is evaluated.
    """
    if smoke:
        ns = ns or (256, 1024)
        hull_ns = hull_ns or (300,)
        repeats = min(repeats, 2)
        n_facets = min(n_facets, 8)
        soa_big_n = None
    else:
        ns = ns or (1_000, 10_000, 20_000)
        hull_ns = hull_ns or (2_000, 20_000, 100_000)
        soa_big_n = 1_000_000

    rows = [
        _predicate_row(n, d, n_facets, repeats, seed + 31 * n + d)
        for d in ds
        for n in ns
    ]
    hull_rows = [
        _hull_row(n, d, repeats, seed + 7 * n + d) for d in ds for n in hull_ns
    ]
    if soa_big_n is not None:
        hull_rows.append(_soa_only_row(soa_big_n, 3, seed + 7 * soa_big_n + 3))

    speedups = [r["speedup_vs_scalar"] for r in rows]
    large = [r["speedup_vs_scalar"] for r in rows if r["n"] >= 10_000]
    # Rows with an oracle run (the soa-only far point has scalar_s None).
    diffed = [r for r in hull_rows if r["scalar_s"] is not None]
    # The 5x acceptance criterion is evaluated at d >= 3, the regime the
    # paper's work bounds are about: in 2-D the per-facet masked path
    # already serves the long conflict lists well, so the flat sweep's
    # win there is structural overhead removal (~3-4x), not the
    # facet-count-dominated regime the SoA engine exists for.
    soa_1e5 = [r["soa_speedup"] for r in diffed
               if r["n"] >= 100_000 and r["d"] >= 3]
    summary = {
        "median_speedup_vs_scalar": float(median(speedups)) if speedups else 0.0,
        "median_speedup_large_n": float(median(large)) if large else None,
        "criterion_3x_at_1e4": bool(large) and median(large) >= 3.0,
        "max_fallback_rate": max((r["fallback_rate"] for r in rows), default=0.0),
        "all_hulls_identical": all(r["same_facets"] for r in diffed),
        "all_containment_checks_passed": all(
            r.get("sampled_containment", True) is not False for r in hull_rows
        ),
        # end-to-end batch/scalar ratio per n (median across ds): the
        # trend EXPERIMENTS E21 reads against the hotpath findings
        "hull_speedup_by_n": {
            str(n): float(median(
                r["speedup"] for r in diffed if r["n"] == n
            ))
            for n in sorted({r["n"] for r in diffed})
        },
        # E24: the conflict-list SoA engine's end-to-end trajectory,
        # per dimension (the 2-D and 3-D regimes differ structurally;
        # blending them into one median would hide both).
        "soa_speedup_by_n": {
            f"n={r['n']},d={r['d']}": r["soa_speedup"] for r in diffed
        },
        "criterion_soa_5x_at_1e5": bool(soa_1e5) and median(soa_1e5) >= 5.0,
    }
    return {
        "schema": KERNEL_BENCH_SCHEMA,
        "smoke": smoke,
        "seed": seed,
        "repeats": repeats,
        "ns": list(ns),
        "ds": list(ds),
        "rows": rows,
        "hull_rows": hull_rows,
        "summary": summary,
    }
