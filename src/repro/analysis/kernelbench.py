"""E19: batched predicate kernels vs the scalar oracle.

The batched kernel (:mod:`repro.geometry.kernels`) claims two things:
bit-identical signs to the scalar path, and a large constant-factor
speedup on the visibility tests that dominate hull work.  This module
measures the second claim (the first is the differential suite's job,
but every measurement here re-asserts agreement anyway): for each
``(n, d)`` it times three engines deciding the *same* (facet x
candidate) visibility block --

``scalar``
    one :meth:`~repro.geometry.hyperplane.Hyperplane.side` call per
    (facet, point) pair: the per-call oracle the predicates are
    specified against;
``masked``
    one :meth:`~repro.geometry.hyperplane.Hyperplane.visible_mask`
    call per facet: the pre-existing per-facet vectorized path;
``batch``
    one :meth:`~repro.geometry.kernels.BatchKernel.visible_blocks`
    sweep for the whole ragged block.

and reports median wall times, speedups, and the filter-fallback rate
(the fraction of signs the float envelope could not certify).  An
end-to-end section runs ``sequential_hull`` under both ``kernel=``
engines along an ``n`` trajectory (2e3 / 2e4 / 1e5 in the full run),
checking facet-set equality and recording the batch/scalar ratio per
``n`` -- the number the hot-path analyzer's findings have to explain.

Results are JSON-shaped for ``BENCH_kernels.json`` (consumed by
EXPERIMENTS.md's E19 table and the ``kernels-smoke`` CI job via
``benchmarks/bench_kernels.py`` or ``repro bench-kernels``).
"""

from __future__ import annotations

import time
from statistics import median
from typing import Sequence

import numpy as np

from ..geometry.hyperplane import Hyperplane
from ..geometry.kernels import BatchKernel
from ..geometry.points import uniform_ball
from ..hull.sequential import sequential_hull

__all__ = ["run_kernel_bench", "KERNEL_BENCH_SCHEMA"]

KERNEL_BENCH_SCHEMA = "repro.bench.kernels/1"


def _facet_specs(
    pts: np.ndarray, n_facets: int, rng: np.random.Generator
) -> tuple[list[Hyperplane], list[tuple[int, ...]], list[np.ndarray]]:
    """Build ``n_facets`` well-defined planes through random d-subsets,
    each tested against every other point -- the dense analogue of the
    hull's ragged conflict blocks.

    The RPRHOT suppressions here and in ``_predicate_row`` are the
    measurement harness itself: the scalar closures *time* the
    per-element path on purpose, and the raw sweeps are stopwatch
    material, not hull work the span accounting should see.
    """
    n, d = pts.shape
    interior = pts.mean(axis=0)
    planes: list[Hyperplane] = []
    idx_list: list[tuple[int, ...]] = []
    cand_list: list[np.ndarray] = []
    everything = np.arange(n, dtype=np.int64)
    while len(planes) < n_facets:
        idx = tuple(sorted(int(i) for i in rng.choice(n, size=d, replace=False)))
        try:
            plane = Hyperplane.through(pts[list(idx)], interior, indices=idx)  # repro: noqa: RPRHOT002
        except ValueError:
            continue  # interior exactly on the plane: redraw
        if plane.always_exact:
            continue  # degenerate draw would bench the exact path only
        keep = np.ones(n, dtype=bool)  # repro: noqa: RPRHOT003
        keep[list(idx)] = False
        planes.append(plane)  # repro: noqa: RPRHOT003
        idx_list.append(idx)
        cand_list.append(everything[keep])  # repro: noqa: RPRHOT003
    return planes, idx_list, cand_list


def _time(fn, repeats: int) -> tuple[float, object]:
    """Median wall time of ``fn`` over ``repeats`` runs, plus its last
    return value."""
    times = []
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        times.append(time.perf_counter() - t0)
    return float(median(times)), out


def _predicate_row(
    n: int, d: int, n_facets: int, repeats: int, seed: int
) -> dict:
    rng = np.random.default_rng(seed)
    pts = uniform_ball(n, d, seed=seed)
    planes, idx_list, cand_list = _facet_specs(pts, n_facets, rng)
    tests = sum(int(c.size) for c in cand_list)

    def scalar() -> list[np.ndarray]:
        out = []
        for plane, cands in zip(planes, cand_list):  # repro: noqa: RPRHOT001
            out.append(
                np.array([plane.side(pts[r], int(r)) > 0 for r in cands], dtype=bool)  # repro: noqa: RPRHOT002, RPRHOT003
            )
        return out

    def masked() -> list[np.ndarray]:
        return [
            plane.visible_mask(pts[cands], indices=cands)  # repro: noqa: RPRHOT002
            for plane, cands in zip(planes, cand_list)
        ]

    def batch() -> list[np.ndarray]:
        # Fresh cache-less kernel per run: timings measure the sweep,
        # not cache replay of the previous repeat.
        kern = BatchKernel(pts, cache=False)
        return kern.visible_blocks(planes, idx_list, cand_list)  # repro: noqa: RPRHOT006

    scalar_s, scalar_masks = _time(scalar, repeats)
    masked_s, masked_masks = _time(masked, repeats)
    batch_s, batch_masks = _time(batch, repeats)

    for a, b, c in zip(scalar_masks, masked_masks, batch_masks):
        if not (np.array_equal(a, b) and np.array_equal(a, c)):
            raise AssertionError(f"engine disagreement at n={n} d={d}")

    # Fallback + cache statistics from one instrumented cached sweep.
    kern = BatchKernel(pts, cache=True)
    kern.visible_blocks(planes, idx_list, cand_list)  # repro: noqa: RPRHOT006
    kern.visible_blocks(planes, idx_list, cand_list)  # repro: noqa: RPRHOT006 (pure cache replay)
    snap = kern.snapshot()
    cache = kern.cache.snapshot() if kern.cache is not None else {}
    return {
        "n": n,
        "d": d,
        "facets": len(planes),
        "tests": tests,
        "scalar_s": scalar_s,
        "masked_s": masked_s,
        "batch_s": batch_s,
        "speedup_vs_scalar": scalar_s / batch_s if batch_s else float("inf"),
        "speedup_vs_masked": masked_s / batch_s if batch_s else float("inf"),
        "fallbacks": snap["fallbacks"],
        "fallback_rate": snap["fallbacks"] / max(1, snap["batched_signs"]),
        "cache_hits": cache.get("cache_hits", 0),
        "cache_misses": cache.get("cache_misses", 0),
    }


def _hull_row(n: int, d: int, repeats: int, seed: int) -> dict:
    """One end-to-end point of the hull trajectory.

    Large instances get one repeat: a full ``sequential_hull`` at
    ``n=1e5, d=3`` runs ~15 s per engine, and the trajectory's job is
    the *trend* of the batch/scalar ratio across n (does the per-facet
    driver overhead wash out as sweeps grow?), not a tight median."""
    repeats = repeats if n < 10_000 else 1
    pts = uniform_ball(n, d, seed=seed + 17)
    order = np.random.default_rng(seed).permutation(n)

    scalar_s, scalar_res = _time(
        lambda: sequential_hull(pts, order=order.copy(), kernel="scalar"), repeats
    )
    batch_s, batch_res = _time(
        lambda: sequential_hull(pts, order=order.copy(), kernel="batch"), repeats
    )
    return {
        "n": n,
        "d": d,
        "repeats": repeats,
        "scalar_s": scalar_s,
        "batch_s": batch_s,
        "speedup": scalar_s / batch_s if batch_s else float("inf"),
        "same_facets": scalar_res.facet_keys() == batch_res.facet_keys(),
        "hull_facets": len(scalar_res.facet_keys()),
    }


def run_kernel_bench(
    ns: Sequence[int] | None = None,
    ds: Sequence[int] = (2, 3),
    hull_ns: Sequence[int] | None = None,
    n_facets: int = 24,
    repeats: int = 3,
    seed: int = 0,
    smoke: bool = False,
) -> dict:
    """Run the E19 campaign and return the ``BENCH_kernels.json`` dict.

    ``smoke=True`` shrinks sizes/repeats for CI (correctness of the
    harness, not meaningful timings).  The full run covers ``n >= 1e4``
    where the acceptance criterion (batched >= 3x scalar median
    speedup on visibility testing) is evaluated.
    """
    if smoke:
        ns = ns or (256, 1024)
        hull_ns = hull_ns or (300,)
        repeats = min(repeats, 2)
        n_facets = min(n_facets, 8)
    else:
        ns = ns or (1_000, 10_000, 20_000)
        hull_ns = hull_ns or (2_000, 20_000, 100_000)

    rows = [
        _predicate_row(n, d, n_facets, repeats, seed + 31 * n + d)
        for d in ds
        for n in ns
    ]
    hull_rows = [
        _hull_row(n, d, repeats, seed + 7 * n + d) for d in ds for n in hull_ns
    ]

    speedups = [r["speedup_vs_scalar"] for r in rows]
    large = [r["speedup_vs_scalar"] for r in rows if r["n"] >= 10_000]
    summary = {
        "median_speedup_vs_scalar": float(median(speedups)) if speedups else 0.0,
        "median_speedup_large_n": float(median(large)) if large else None,
        "criterion_3x_at_1e4": bool(large) and median(large) >= 3.0,
        "max_fallback_rate": max((r["fallback_rate"] for r in rows), default=0.0),
        "all_hulls_identical": all(r["same_facets"] for r in hull_rows),
        # end-to-end batch/scalar ratio per n (median across ds): the
        # trend EXPERIMENTS E21 reads against the hotpath findings
        "hull_speedup_by_n": {
            str(n): float(median(
                r["speedup"] for r in hull_rows if r["n"] == n
            ))
            for n in sorted({r["n"] for r in hull_rows})
        },
    }
    return {
        "schema": KERNEL_BENCH_SCHEMA,
        "smoke": smoke,
        "seed": seed,
        "repeats": repeats,
        "ns": list(ns),
        "ds": list(ds),
        "rows": rows,
        "hull_rows": hull_rows,
        "summary": summary,
    }
