"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``hull``      build a hull and print run statistics
``depth``     depth-vs-n campaign (experiment E1)
``work``      sequential-vs-parallel work comparison (E2)
``speedup``   simulated speedup table from the work-span log (E13)
``delaunay``  Delaunay three ways: lifted / Bowyer-Watson / parallel (E14)
``figure1``   the paper's Figure 1 walkthrough (E4)
``crcw``      measured CRCW PRAM span accounting (E3)
``certify``   build a hull via the escalation ladder, emit and verify
              its independently-checked certificate (E18)
``lint``      static concurrency/robustness checks (rules RPR001-RPR005)
``effects``   interprocedural effect analysis: statically prove the
              atomic-step discipline (rules RPREFF001-RPREFF004, E20)
``race-check``  dynamic happens-before race check of the multimap (E16)
``chaos``     fault-injection suite: stall sweeps + crash/delay roundtrips (E17)
``bench-kernels``  scalar vs batched predicate kernels, filter-fallback
              rates, sign-cache stats (E19)
``noisy``     noisy-oracle campaign: output error vs flip rate p, vote
              overhead, certificate validator power (E23)

Examples
--------

    python -m repro hull --n 5000 --d 3 --workload sphere --executor rounds
    python -m repro depth --sizes 128 512 2048 --d 2 --seeds 5
    python -m repro speedup --n 2000 --procs 1 4 16 64
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from .analysis import compare_work, crcw_span, measure_hull_depths, speedup_table
from .configspace.theory import harmonic
from .geometry import points as gen
from .hull import parallel_hull, validate_hull
from .runtime import ProcessExecutor, RoundExecutor, SerialExecutor, ThreadExecutor

WORKLOADS = {
    "ball": gen.uniform_ball,
    "cube": gen.uniform_cube,
    "sphere": gen.on_sphere,
    "gaussian": gen.gaussian,
    "anisotropic": gen.anisotropic,
    "clusters": gen.two_clusters,
    "cyclic": gen.moment_curve,
}

EXECUTORS = {
    "serial": lambda args: SerialExecutor(),
    "rounds": lambda args: RoundExecutor(),
    "threads": lambda args: ThreadExecutor(args.workers),
    "process": lambda args: ProcessExecutor(n_workers=args.workers),
}


def _points(args) -> np.ndarray:
    try:
        workload = WORKLOADS[args.workload]
    except KeyError:
        raise SystemExit(f"unknown workload {args.workload!r}; choose from {sorted(WORKLOADS)}")
    return workload(args.n, args.d, seed=args.seed)


def cmd_hull(args) -> None:
    pts = _points(args)
    if args.engine == "soa":
        # The SoA engine is round-synchronous by construction and pairs
        # ridges by sort: the executor/multimap knobs do not apply.
        if args.executor != "rounds":
            raise SystemExit(
                "--engine soa is round-synchronous; it only runs with the "
                "default --executor rounds"
            )
        executor = None
        multimap = "dict"
    else:
        executor = EXECUTORS[args.executor](args)
        multimap = "cas" if args.executor == "threads" else "dict"
    extra = {}
    if args.noise > 0.0:
        # Noisy oracle: run through the certificate-gated ladder so a
        # hull the noise corrupted escalates (vote count, then the
        # exact rungs) instead of being printed.
        from .geometry.noisy import NoisyKernel, parse_votes
        from .hull import robust_hull

        try:
            nk = NoisyKernel(p=args.noise, votes=parse_votes(args.votes),
                             seed=args.seed, base=args.kernel)
        except ValueError as exc:
            raise SystemExit(str(exc))
        res = robust_hull(pts, seed=args.seed + 1, noise=nk,
                          executor=executor, multimap=multimap,
                          kernel=args.kernel, engine=args.engine)
        run = res.run
        extra = {"mode": res.mode, "escalations": res.escalations}
    else:
        run = parallel_hull(pts, seed=args.seed + 1, executor=executor,
                            multimap=multimap, kernel=args.kernel,
                            engine=args.engine)
    validate_hull(run.facets, run.points)
    out = {
        "n": args.n,
        "d": args.d,
        "workload": args.workload,
        "executor": args.executor,
        "kernel": run.exec_stats.kernel_stats,
        **extra,
        "hull_facets": len(run.facets),
        "hull_vertices": len(run.vertex_indices()),
        "facets_created": len(run.created),
        "visibility_tests": run.counters.visibility_tests,
        "dependence_depth": run.dependence_depth(),
        "rounds": run.exec_stats.rounds,
        "work": run.tracker.work,
        "span": run.tracker.span,
        "parallelism": round(run.tracker.parallelism, 1),
    }
    json.dump(out, sys.stdout, indent=2)
    print()


def cmd_depth(args) -> None:
    workload = WORKLOADS[args.workload]
    camp = measure_hull_depths(
        args.sizes, args.d, range(args.seeds),
        generator=lambda n, d, s: workload(n, d, seed=s),
    )
    print(f"{'n':>7} {'H_n':>6} {'mean depth':>11} {'max':>5} {'sigma':>7} {'rounds':>7}")
    for s in camp.samples:
        print(f"{s.n:>7} {harmonic(s.n):>6.2f} {s.mean_depth:>11.2f} "
              f"{s.max_depth:>5} {s.depth_over_harmonic:>7.2f} "
              f"{np.mean(s.rounds):>7.1f}")
    print(f"fitted depth slope per ln(n): {camp.log_slope():.2f}")


def cmd_work(args) -> None:
    pts = _points(args)
    row = compare_work(pts, seed=args.seed).row()
    json.dump(row, sys.stdout, indent=2, default=str)
    print()


def cmd_speedup(args) -> None:
    pts = _points(args)
    run = parallel_hull(pts, seed=args.seed)
    print(f"{'P':>5} {'T_P':>10} {'speedup':>8} {'model':>8} {'util':>6}")
    for row in speedup_table(run, args.procs):
        print(f"{row['P']:>5} {row['T_P']:>10,} {row['speedup']:>8.2f} "
              f"{row['model_speedup']:>8.2f} {row['utilisation']:>6.2f}")


def cmd_delaunay(args) -> None:
    from .apps import bowyer_watson, delaunay as lifted_delaunay
    from .apps.parallel_delaunay import parallel_delaunay

    pts = WORKLOADS[args.workload](args.n, 2, seed=args.seed)
    order = np.random.default_rng(args.seed + 1).permutation(args.n)
    lifted = lifted_delaunay(pts, order=order.copy())
    bw = bowyer_watson(pts, order=order.copy())
    pd = parallel_delaunay(pts, order=order.copy())
    agree = lifted.triangles == bw.triangles == pd.triangles
    print(f"{'method':<26} {'triangles':>9} {'depth':>6}")
    print(f"{'lifted parallel hull':<26} {lifted.n_triangles:>9} {lifted.dependence_depth():>6}")
    print(f"{'sequential BW':<26} {bw.n_triangles:>9} {bw.dependence_depth():>6}")
    print(f"{'parallel ProcessEdge':<26} {pd.n_triangles:>9} {pd.dependence_depth():>6}")
    print(f"all agree: {agree}; identical tests BW==parallel: "
          f"{pd.in_circle_tests == bw.in_circle_tests}")


def cmd_crcw(args) -> None:
    pts = _points(args)
    run = parallel_hull(pts, seed=args.seed)
    for mode in ("approximate", "exact"):
        rep = crcw_span(run, compaction=mode)
        print(f"{mode:>12}: algorithm rounds={rep.algorithm_rounds} "
              f"PRAM span={rep.span_rounds} per-round={rep.span_per_round:.1f} "
              f"normalized={rep.normalized():.2f}")


def cmd_certify(args) -> None:
    from .geometry.degenerate import corpus_case, corpus_names
    from .hull import robust_hull
    from .hull.certify import (
        CORRUPTION_MODES,
        CertificateError,
        corrupt_certificate,
        verify_certificate,
    )

    if args.family is not None:
        try:
            pts = corpus_case(args.family, seed=args.seed)
        except KeyError:
            raise SystemExit(
                f"unknown degenerate family {args.family!r}; "
                f"choose from {corpus_names()}"
            )
    else:
        pts = _points(args)
    res = robust_hull(pts, seed=args.seed)
    cert = res.certificate
    out = {
        "n": int(len(pts)),
        "d": int(pts.shape[1]),
        "source": args.family or args.workload,
        "mode": res.mode,
        "escalations": res.escalations,
        "facets": len(cert.facets),
        "vertices": len(res.vertex_indices()),
        "sos": cert.sos,
        "verified": True,  # robust_hull re-raises otherwise
    }
    if args.corrupt:
        # Adversarial self-test: the corrupted certificate MUST be
        # rejected; exiting 0 means the checker caught it.
        corrupted = corrupt_certificate(cert, args.corrupt, seed=args.seed)
        try:
            verify_certificate(corrupted, pts)
        except CertificateError as exc:
            out["corruption"] = args.corrupt
            out["rejected"] = True
            out["rejection_error"] = str(exc)
        else:
            out["corruption"] = args.corrupt
            out["rejected"] = False
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(cert.to_dict(), fh)
        out["certificate_file"] = args.json_out
    json.dump(out, sys.stdout, indent=2)
    print()
    if args.corrupt and not out["rejected"]:
        raise SystemExit(1)


def cmd_lint(args) -> None:
    from .lint import ALL_RULES, lint_paths

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}  {rule.name}: {rule.summary}")
        return
    from pathlib import Path

    missing = [p for p in (args.paths or []) if not Path(p).exists()]
    if missing:
        raise SystemExit(f"lint: no such path(s): {', '.join(missing)}")
    violations = lint_paths(
        args.paths or None,
        select=args.select,
        ignore=args.ignore or (),
    )
    if args.sarif:
        from .analyze import findings_to_sarif

        table = {r.id: (r.name, r.summary) for r in ALL_RULES}
        with open(args.sarif, "w") as fh:
            json.dump(findings_to_sarif("repro-lint", table, violations),
                      fh, indent=2)
        print(f"wrote {args.sarif}", file=sys.stderr)
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump([v.__dict__ for v in violations], fh, indent=2)
        print(f"wrote {args.json_out}", file=sys.stderr)
    if args.format == "json":
        json.dump([v.__dict__ for v in violations], sys.stdout, indent=2)
        print()
    else:
        for v in violations:
            print(v.format())
        if violations:
            print(f"{len(violations)} violation(s)")
    if violations:
        raise SystemExit(1)


def cmd_effects(args) -> None:
    from .analyze import (
        RULES,
        analyze_paths,
        compare_baseline,
        load_baseline,
        render_text,
        save_baseline,
        to_json,
        to_sarif,
    )

    if args.list_rules:
        for rid, (name, summary) in sorted(RULES.items()):
            print(f"{rid}  {name}: {summary}")
        return
    from pathlib import Path

    paths = args.paths or ["src"]
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        raise SystemExit(f"effects: no such path(s): {', '.join(missing)}")
    result = analyze_paths(paths)
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(to_json(result), fh, indent=2)
        print(f"wrote {args.json_out}", file=sys.stderr)
    if args.sarif:
        with open(args.sarif, "w") as fh:
            json.dump(to_sarif(result), fh, indent=2)
        print(f"wrote {args.sarif}", file=sys.stderr)
    if args.update_baseline:
        save_baseline(args.baseline, result)
        print(f"wrote {args.baseline}", file=sys.stderr)
        return
    problems: list[str] = []
    if args.baseline and Path(args.baseline).exists():
        problems = compare_baseline(result, load_baseline(args.baseline))
        failed = bool(problems)
    else:
        failed = bool(result.findings)
    if args.format == "json":
        payload = to_json(result)
        payload["baseline_problems"] = problems
        json.dump(payload, sys.stdout, indent=2)
        print()
    else:
        print(render_text(result, verbose=args.verbose))
        for p in problems:
            print(f"baseline: {p}")
    if failed:
        raise SystemExit(1)


def cmd_hotpath(args) -> None:
    from .analyze import (
        HOT_RULES,
        analyze_hotpaths,
        compare_baseline,
        findings_to_sarif,
        load_baseline,
        render_hot_text,
        save_baseline,
    )

    if args.list_rules:
        for rid, (name, summary) in sorted(HOT_RULES.items()):
            print(f"{rid}  {name}: {summary}")
        return
    from pathlib import Path

    paths = args.paths or ["src"]
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        raise SystemExit(f"hotpath: no such path(s): {', '.join(missing)}")
    result = analyze_hotpaths(paths)

    def payload() -> dict:
        return {
            "schema_version": 1,
            "findings": [f.as_dict() for f in result.findings],
            "suppressed": [f.as_dict() for f in result.suppressed],
            "entries": {q: reason for q, reason in sorted(result.entries.items())},
            "hot_functions": len(result.hot),
            "annotated": len(result.annotations),
        }

    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(payload(), fh, indent=2)
        print(f"wrote {args.json_out}", file=sys.stderr)
    if args.sarif:
        with open(args.sarif, "w") as fh:
            json.dump(
                findings_to_sarif("repro-hotpath", HOT_RULES, result.findings),
                fh, indent=2,
            )
        print(f"wrote {args.sarif}", file=sys.stderr)
    if args.update_baseline:
        save_baseline(args.baseline, result,
                      suppression_key="rprhot_suppressions")
        print(f"wrote {args.baseline}", file=sys.stderr)
        return
    problems: list[str] = []
    if args.baseline and Path(args.baseline).exists():
        problems = compare_baseline(result, load_baseline(args.baseline),
                                    suppression_key="rprhot_suppressions")
        failed = bool(problems)
    else:
        failed = bool(result.findings)
    if args.format == "json":
        out = payload()
        out["baseline_problems"] = problems
        json.dump(out, sys.stdout, indent=2)
        print()
    else:
        print(render_hot_text(result, verbose=args.verbose))
        for p in problems:
            print(f"baseline: {p}")
    if failed:
        raise SystemExit(1)


def cmd_fpcheck(args) -> None:
    from .analyze import (
        FP_RULES,
        analyze_fpcheck,
        compare_baseline,
        findings_to_sarif,
        load_baseline,
        render_fp_text,
        save_baseline,
    )

    if args.list_rules:
        for rid, (name, summary) in sorted(FP_RULES.items()):
            print(f"{rid}  {name}: {summary}")
        return
    from pathlib import Path

    paths = args.paths or ["src"]
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        raise SystemExit(f"fpcheck: no such path(s): {', '.join(missing)}")
    result = analyze_fpcheck(paths)

    def payload() -> dict:
        return {
            "schema_version": 1,
            "findings": [f.as_dict() for f in result.findings],
            "suppressed": [f.as_dict() for f in result.suppressed],
            "entries": {q: reason for q, reason in sorted(result.entries.items())},
            "hot_functions": len(result.hot),
            "annotated": len(result.annotations),
            "claims": [
                {
                    "qualname": c.qualname,
                    "name": c.name,
                    "line": c.line,
                    "kind": c.kind,
                    "pin": list(c.pin) if c.pin else None,
                    "ok": c.ok,
                }
                for c in result.claims
            ],
        }

    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(payload(), fh, indent=2)
        print(f"wrote {args.json_out}", file=sys.stderr)
    if args.sarif:
        with open(args.sarif, "w") as fh:
            json.dump(
                findings_to_sarif("repro-fpcheck", FP_RULES, result.findings),
                fh, indent=2,
            )
        print(f"wrote {args.sarif}", file=sys.stderr)
    if args.update_baseline:
        save_baseline(args.baseline, result,
                      suppression_key="rprfp_suppressions")
        print(f"wrote {args.baseline}", file=sys.stderr)
        return
    problems: list[str] = []
    if args.baseline and Path(args.baseline).exists():
        problems = compare_baseline(result, load_baseline(args.baseline),
                                    suppression_key="rprfp_suppressions")
        failed = bool(problems)
    else:
        failed = bool(result.findings)
    if args.format == "json":
        out = payload()
        out["baseline_problems"] = problems
        json.dump(out, sys.stdout, indent=2)
        print()
    else:
        print(render_fp_text(result, verbose=args.verbose))
        for p in problems:
            print(f"baseline: {p}")
    if failed:
        raise SystemExit(1)


def cmd_race_check(args) -> None:
    from .runtime.racecheck import check_multimap

    impls = ["cas", "tas"] if args.impl == "both" else [args.impl]
    failed = False
    for impl in impls:
        scenarios = [(2, args.prefix)]
        if args.three:
            scenarios.append((3, args.prefix_three))
        for n_ops, prefix in scenarios:
            try:
                summary = check_multimap(
                    impl,
                    capacity=args.capacity,
                    prefix_len=prefix,
                    n_ops=n_ops,
                    collide=not args.no_collide,
                )
            except AssertionError as exc:
                # check_multimap asserts Theorem A.1 on every schedule;
                # report the counterexample instead of a traceback.
                print(f"[{n_ops} ops, prefix {prefix}] race-check[{impl}]: FAIL -- {exc}")
                failed = True
                continue
            print(f"[{n_ops} ops, prefix {prefix}] {summary.describe()}")
            failed = failed or not summary.ok
    if failed:
        raise SystemExit(1)


def cmd_chaos(args) -> None:
    from .runtime.chaos import run_chaos_suite

    report = run_chaos_suite(seed=args.seed, budget=args.budget,
                             executor=args.executor)
    json.dump(report.as_dict(), sys.stdout, indent=2)
    print()
    if not report.ok:
        raise SystemExit(1)


def cmd_noisy(args) -> None:
    from .analysis.noisybench import run_noisy_bench

    report = run_noisy_bench(seed=args.seed, smoke=args.smoke)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        json.dump(report, sys.stdout, indent=2)
        print()
    s = report["summary"]
    if not s["all_ladder_runs_match_exact"] or s["validator_false_accepts"]:
        raise SystemExit(1)


def cmd_bench_kernels(args) -> None:
    from .analysis.kernelbench import run_kernel_bench

    report = run_kernel_bench(seed=args.seed, smoke=args.smoke)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        json.dump(report, sys.stdout, indent=2)
        print()


def _figure1(args) -> None:
    from .geometry import figure1_points

    pts, labels = figure1_points()
    run = parallel_hull(pts, order=np.arange(10), base_size=7)

    def edge(fid: int) -> str:
        f = next(x for x in run.created if x.fid == fid)
        return "-".join(labels[i] for i in f.indices)

    for rnd in range(run.exec_stats.rounds):
        print(f"round {rnd + 1}:")
        for e in run.events:
            if e.round != rnd:
                continue
            ridge = ",".join(labels[i] for i in sorted(e.ridge))
            if e.kind == "create":
                print(f"  {{{ridge}}}: create {edge(e.created)} "
                      f"(replaces {edge(e.removed)}, pivot {labels[e.pivot]})")
            elif e.kind == "bury":
                a, b = e.removed_pair
                print(f"  {{{ridge}}}: bury {edge(a)}, {edge(b)} (pivot {labels[e.pivot]})")
            else:
                print(f"  {{{ridge}}}: final")
    print("final hull:", sorted(edge(f.fid) for f in run.facets))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Randomized incremental convex hull (SPAA'20) reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, sizes=False):
        p.add_argument("--n", type=int, default=1000)
        p.add_argument("--d", type=int, default=2)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--workload", default="ball", choices=sorted(WORKLOADS))

    p = sub.add_parser("hull", help="build a hull, print statistics")
    common(p)
    p.add_argument("--executor", default="rounds", choices=sorted(EXECUTORS))
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--kernel", default="scalar", choices=["scalar", "batch"],
                   help="visibility engine: per-facet scalar oracle or "
                        "batched einsum sweeps with exact fallback")
    p.add_argument("--engine", default="objects", choices=["objects", "soa"],
                   help="hull core: per-facet object task driver or the "
                        "round-vectorized conflict-list SoA engine "
                        "(requires the default rounds executor)")
    p.add_argument("--noise", type=float, default=0.0, metavar="P",
                   help="flip each visibility decision with probability P "
                        "(seeded noisy oracle; runs through the "
                        "certificate-gated robust ladder)")
    p.add_argument("--votes", default="1", metavar="K",
                   help="majority-vote repetitions per noisy decision: a "
                        "positive odd integer or 'adaptive'")
    p.set_defaults(fn=cmd_hull)

    p = sub.add_parser("depth", help="depth-vs-n campaign (E1)")
    p.add_argument("--sizes", type=int, nargs="+", default=[128, 512, 2048])
    p.add_argument("--d", type=int, default=2)
    p.add_argument("--seeds", type=int, default=5)
    p.add_argument("--workload", default="ball", choices=sorted(WORKLOADS))
    p.set_defaults(fn=cmd_depth)

    p = sub.add_parser("work", help="sequential vs parallel work (E2)")
    common(p)
    p.set_defaults(fn=cmd_work)

    p = sub.add_parser("speedup", help="simulated speedup table (E13)")
    common(p)
    p.add_argument("--procs", type=int, nargs="+", default=[1, 2, 4, 8, 16, 32])
    p.set_defaults(fn=cmd_speedup)

    p = sub.add_parser("delaunay", help="Delaunay three ways (E14)")
    common(p)
    p.set_defaults(fn=cmd_delaunay)

    p = sub.add_parser("figure1", help="the Figure 1 walkthrough (E4)")
    p.set_defaults(fn=_figure1)

    p = sub.add_parser("crcw", help="CRCW PRAM span accounting (E3)")
    common(p)
    p.set_defaults(fn=cmd_crcw)

    p = sub.add_parser(
        "certify",
        help="build a hull via the robust ladder and verify its certificate",
    )
    common(p)
    p.add_argument("--family", default=None, metavar="NAME",
                   help="use a degenerate-corpus family instead of a workload "
                        "(see repro.geometry.degenerate)")
    p.add_argument("--corrupt", default=None,
                   choices=["drop-facet", "flip-orientation",
                            "duplicate-ridge", "tamper-vertex"],
                   help="corrupt the certificate and exit 0 iff the "
                        "verifier rejects it")
    p.add_argument("--json-out", default=None, metavar="FILE",
                   help="also write the full certificate JSON to FILE")
    p.set_defaults(fn=cmd_certify)

    p = sub.add_parser("lint", help="static concurrency/robustness checks")
    p.add_argument("paths", nargs="*", help="files/dirs to lint (default: src tools)")
    p.add_argument("--select", nargs="+", metavar="RPRnnn",
                   help="run only these rule ids")
    p.add_argument("--ignore", nargs="+", metavar="RPRnnn",
                   help="skip these rule ids")
    p.add_argument("--format", default="text", choices=["text", "json"])
    p.add_argument("--json-out", default=None, metavar="FILE",
                   help="also write the violations as JSON to FILE")
    p.add_argument("--sarif", default=None, metavar="FILE",
                   help="also write a SARIF 2.1.0 report to FILE "
                        "(shared emitter with effects/hotpath)")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule registry and exit")
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser(
        "effects",
        help="interprocedural effect analysis of the atomic-step "
             "discipline (rules RPREFF001-004)",
    )
    p.add_argument("paths", nargs="*",
                   help="files/dirs to analyse (default: src)")
    p.add_argument("--format", default="text", choices=["text", "json"])
    p.add_argument("--json-out", default=None, metavar="FILE",
                   help="also write the full JSON report to FILE")
    p.add_argument("--sarif", default=None, metavar="FILE",
                   help="also write a SARIF 2.1.0 report to FILE")
    p.add_argument("--baseline", default="analyze-baseline.json",
                   metavar="FILE",
                   help="ratchet baseline to compare against (ignored "
                        "if the file does not exist)")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite the baseline from this run and exit 0")
    p.add_argument("--verbose", action="store_true",
                   help="also print shared-effect sites and imprecision notes")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule registry and exit")
    p.set_defaults(fn=cmd_effects)

    p = sub.add_parser(
        "hotpath",
        help="static vectorization & hot-path discipline analysis of the "
             "batch-kernel arc (rules RPRHOT001-006)",
    )
    p.add_argument("paths", nargs="*",
                   help="files/dirs to analyse (default: src)")
    p.add_argument("--format", default="text", choices=["text", "json"])
    p.add_argument("--json-out", default=None, metavar="FILE",
                   help="also write the full JSON report to FILE")
    p.add_argument("--sarif", default=None, metavar="FILE",
                   help="also write a SARIF 2.1.0 report to FILE")
    p.add_argument("--baseline", default="hotpath-baseline.json",
                   metavar="FILE",
                   help="ratchet baseline to compare against (ignored "
                        "if the file does not exist)")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite the baseline from this run and exit 0")
    p.add_argument("--verbose", action="store_true",
                   help="also print entry points and hot-region provenance")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule registry and exit")
    p.set_defaults(fn=cmd_hotpath)

    p = sub.add_parser(
        "fpcheck",
        help="static floating-point filter-soundness analysis of the "
             "predicate kernels (rules RPRFP001-004, 999)",
    )
    p.add_argument("paths", nargs="*",
                   help="files/dirs to analyse (default: src)")
    p.add_argument("--format", default="text", choices=["text", "json"])
    p.add_argument("--json-out", default=None, metavar="FILE",
                   help="also write the full JSON report to FILE")
    p.add_argument("--sarif", default=None, metavar="FILE",
                   help="also write a SARIF 2.1.0 report to FILE")
    p.add_argument("--baseline", default="fpcheck-baseline.json",
                   metavar="FILE",
                   help="ratchet baseline to compare against (ignored "
                        "if the file does not exist)")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite the baseline from this run and exit 0")
    p.add_argument("--verbose", action="store_true",
                   help="also print every envelope-domination claim checked")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule registry and exit")
    p.set_defaults(fn=cmd_fpcheck)

    p = sub.add_parser("race-check",
                       help="happens-before race check of the concurrent multimap")
    p.add_argument("--impl", default="both", choices=["cas", "tas", "both"])
    p.add_argument("--capacity", type=int, default=4)
    p.add_argument("--prefix", type=int, default=8,
                   help="exhaustive schedule-prefix length for the 2-op race")
    p.add_argument("--three", action="store_true",
                   help="also sweep the 3-op colliding-key scenario")
    p.add_argument("--prefix-three", type=int, default=5)
    p.add_argument("--no-collide", action="store_true",
                   help="use the default hash instead of forced collisions")
    p.set_defaults(fn=cmd_race_check)

    p = sub.add_parser("chaos",
                       help="fault-injection suite: stalls, crashes, delays (E17)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--budget", default="small",
                   choices=["small", "medium", "large"],
                   help="how much chaos to run (small fits in CI)")
    p.add_argument("--executor", default=None,
                   choices=["rounds", "thread", "process"],
                   help="restrict the hull roundtrips to one executor "
                        "family (skips the executor-independent stall "
                        "sweeps); default runs everything")
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser("noisy",
                       help="noisy-oracle campaign: error vs p, vote "
                            "overhead, validator power (E23)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--smoke", action="store_true",
                   help="tiny grid / single seeds (CI harness check)")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the JSON report here instead of stdout")
    p.set_defaults(fn=cmd_noisy)

    p = sub.add_parser("bench-kernels",
                       help="scalar vs batched predicate kernels (E19)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--smoke", action="store_true",
                   help="small sizes / few repeats (CI harness check)")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the JSON report here instead of stdout")
    p.set_defaults(fn=cmd_bench_kernels)

    return parser


def main(argv: list[str] | None = None) -> None:
    args = build_parser().parse_args(argv)
    args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    main()
