"""Non-incremental convex hull baselines for the benchmark comparisons
(E12): classic 2D algorithms and d-dimensional quickhull."""

from .hull2d import chan, divide_and_conquer, gift_wrapping, monotone_chain
from .quickhull import QuickhullResult, quickhull

__all__ = [
    "chan",
    "divide_and_conquer",
    "gift_wrapping",
    "monotone_chain",
    "QuickhullResult",
    "quickhull",
]
