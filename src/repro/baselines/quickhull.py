"""Quickhull in arbitrary (constant) dimension.

The furthest-point divide-and-conquer heuristic used by Qhull [10]: each
facet keeps an *outside set*; repeatedly pick a facet, take its furthest
outside point, remove the visible cone, and stitch new facets along the
horizon.  Structurally it shares the facet/ridge machinery with the
incremental algorithms (it reuses :class:`~repro.hull.common.FacetFactory`)
but chooses insertion points adaptively instead of by random rank --
the classic practical baseline for benchmark E12.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry.simplex import Facet, facet_ridges
from ..hull.common import Counters, FacetFactory, initial_simplex_ranks, prepare_points

__all__ = ["QuickhullResult", "quickhull"]


@dataclass
class QuickhullResult:
    points: np.ndarray
    order: np.ndarray
    facets: list[Facet]
    counters: Counters
    interior: np.ndarray

    def vertex_indices(self) -> set[int]:
        return {int(self.order[i]) for f in self.facets for i in f.indices}

    def facet_keys(self) -> set:
        return {f.key() for f in self.facets}


def quickhull(points: np.ndarray) -> QuickhullResult:
    """Compute the hull of ``points`` (general position) by quickhull.

    The ``conflicts`` array of each facet doubles as its outside set;
    the furthest member is chosen by maximum margin.
    """
    pts, order = prepare_points(points, order=np.arange(len(points)))
    n, d = pts.shape
    init = initial_simplex_ranks(pts)
    counters = Counters()
    interior = pts[init].mean(axis=0)
    factory = FacetFactory(pts, interior, counters)

    facets: dict[int, Facet] = {}
    ridge_map: dict[frozenset, set[int]] = {}

    def install(f: Facet) -> None:
        facets[f.fid] = f
        for r in facet_ridges(f.indices):
            ridge_map.setdefault(r, set()).add(f.fid)

    def uninstall(f: Facet) -> None:
        f.alive = False
        del facets[f.fid]
        for r in facet_ridges(f.indices):
            s = ridge_map[r]
            s.discard(f.fid)
            if not s:
                del ridge_map[r]

    everything = np.arange(n, dtype=np.int64)
    for leave_out in init:
        subset = tuple(i for i in init if i != leave_out)
        install(factory.make(subset, everything))

    # Facets with a nonempty outside set still need processing.
    pending = {fid for fid, f in facets.items() if f.conflicts.size}
    while pending:
        fid = pending.pop()
        f0 = facets.get(fid)
        if f0 is None or not f0.conflicts.size:
            continue
        # Furthest outside point of this facet.
        margins = f0.plane.margins(pts[f0.conflicts])
        apex = int(f0.conflicts[int(np.argmax(margins))])
        # Visible region: BFS over facet adjacency from f0.
        visible: dict[int, Facet] = {f0.fid: f0}
        stack = [f0]
        while stack:
            t = stack.pop()
            for r in facet_ridges(t.indices):
                for other_id in ridge_map[r] - {t.fid}:
                    if other_id in visible:
                        continue
                    other = facets[other_id]
                    counters.visibility_tests += 1
                    if other.plane.is_visible(pts[apex]):
                        visible[other_id] = other
                        stack.append(other)
        # Horizon ridges and replacement facets.
        new_facets: list[Facet] = []
        for t1 in visible.values():
            for r in facet_ridges(t1.indices):
                others = ridge_map[r] - {t1.fid}
                if not others:
                    continue
                (other_id,) = others
                if other_id in visible:
                    continue
                t2 = facets[other_id]
                candidates = np.setdiff1d(
                    np.union1d(t1.conflicts, t2.conflicts),
                    np.array([apex], dtype=np.int64),
                )
                new_facets.append(factory.make(tuple(r | {apex}), candidates))
        for t in visible.values():
            uninstall(t)
            pending.discard(t.fid)
        for t in new_facets:
            install(t)
            if t.conflicts.size:
                pending.add(t.fid)

    return QuickhullResult(
        points=pts,
        order=order,
        facets=sorted(facets.values(), key=lambda f: f.fid),
        counters=counters,
        interior=interior,
    )
