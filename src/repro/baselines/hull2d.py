"""Non-incremental 2D convex hull baselines.

These are the comparison points for benchmark E12 (the paper motivates
the incremental algorithm as competitive with, and simpler than, the
classical alternatives).  All of them return the hull vertices in
counterclockwise order as indices into the input array, and all use the
same adaptive-exact orientation predicate as the main algorithms so the
comparison is apples-to-apples.

* :func:`monotone_chain` -- Andrew's O(n log n) scan;
* :func:`gift_wrapping` -- Jarvis march, O(n h);
* :func:`divide_and_conquer` -- classic O(n log n) merge by tangents
  (the structure PRAM algorithms [7, 8] parallelise);
* :func:`chan` -- Chan's output-sensitive O(n log h) algorithm.
"""

from __future__ import annotations

import numpy as np

from ..geometry.predicates import orient

__all__ = ["monotone_chain", "gift_wrapping", "divide_and_conquer", "chan"]


def _orient2d(points: np.ndarray, a: int, b: int, c: int) -> int:
    """Sign of the cross product (b - a) x (c - a): +1 for a left turn."""
    return orient(points[[a, b]], points[c])


def _lex_order(points: np.ndarray) -> np.ndarray:
    return np.lexsort((points[:, 1], points[:, 0]))


def monotone_chain(points: np.ndarray) -> list[int]:
    """Andrew's monotone chain.  Collinear points on the boundary are
    dropped (only extreme vertices are returned), matching the facet
    structure of the incremental algorithms."""
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    if n < 3:
        return list(range(n))
    idx = _lex_order(points)

    def half(indices) -> list[int]:
        chain: list[int] = []
        for i in indices:
            while len(chain) >= 2 and _orient2d(points, chain[-2], chain[-1], i) <= 0:
                chain.pop()
            chain.append(int(i))
        return chain

    lower = half(idx)
    upper = half(idx[::-1])
    return lower[:-1] + upper[:-1]


def gift_wrapping(points: np.ndarray) -> list[int]:
    """Jarvis march: wrap from the lexicographically smallest point."""
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    if n < 3:
        return list(range(n))
    start = int(_lex_order(points)[0])
    hull = [start]
    current = start
    while True:
        candidate = (current + 1) % n
        for j in range(n):
            if j == current or j == candidate:
                continue
            t = _orient2d(points, current, candidate, j)
            if t < 0:
                candidate = j
            elif t == 0:
                # Collinear: take the farther point so interior
                # collinear points are skipped.
                d_c = points[candidate] - points[current]
                d_j = points[j] - points[current]
                if float(d_j @ d_j) > float(d_c @ d_c):
                    candidate = j
        if candidate == start:
            break
        hull.append(candidate)
        current = candidate
        if len(hull) > n:
            raise RuntimeError("gift wrapping failed to close the hull")
    return hull


def _merge_hulls(points: np.ndarray, left: list[int], right: list[int]) -> list[int]:
    """Merge two x-disjoint CCW hulls by upper/lower tangent walking.

    For the upper tangent every other hull vertex must lie strictly
    below the directed line ``L[i] -> R[j]`` (negative orientation); the
    walk advances ``i`` counterclockwise on the left hull and ``j``
    clockwise on the right hull while a neighbour is above the line.
    The lower tangent is the mirror image.
    """
    nl, nr = len(left), len(right)
    # Rightmost vertex of the left hull, leftmost of the right hull.
    i0 = max(range(nl), key=lambda i: (points[left[i], 0], points[left[i], 1]))
    j0 = min(range(nr), key=lambda j: (points[right[j], 0], points[right[j], 1]))

    def tangent(upper: bool) -> tuple[int, int]:
        i, j = i0, j0
        while True:
            moved = False
            while nl > 1:
                # Upper: advance i CCW while L's next vertex is on or
                # above the line; lower: advance i CW while below.
                inext = (i + 1) % nl if upper else (i - 1) % nl
                t = _orient2d(points, left[i], right[j], left[inext])
                if (t >= 0) if upper else (t <= 0):
                    i = inext
                    moved = True
                else:
                    break
            while nr > 1:
                jnext = (j - 1) % nr if upper else (j + 1) % nr
                t = _orient2d(points, left[i], right[j], right[jnext])
                if (t >= 0) if upper else (t <= 0):
                    j = jnext
                    moved = True
                else:
                    break
            if not moved:
                return i, j

    ui, uj = tangent(upper=True)
    li, lj = tangent(upper=False)
    merged: list[int] = []
    # Left hull from the upper-tangent vertex CCW (around its far, left
    # side) to the lower-tangent vertex ...
    i = ui
    while True:
        merged.append(left[i])
        if i == li:
            break
        i = (i + 1) % nl
    # ... then across the lower tangent and around the right hull's far
    # side up to the upper-tangent vertex.
    j = lj
    while True:
        merged.append(right[j])
        if j == uj:
            break
        j = (j + 1) % nr
    return merged


def divide_and_conquer(points: np.ndarray, leaf_size: int = 8) -> list[int]:
    """Classic divide-and-conquer: sort by x, split, hull the halves,
    merge by tangents."""
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    if n < 3:
        return list(range(n))
    idx = _lex_order(points)

    def solve(chunk: np.ndarray) -> list[int]:
        if len(chunk) <= leaf_size:
            local = monotone_chain(points[chunk])
            return [int(chunk[i]) for i in local]
        mid = len(chunk) // 2
        return _merge_hulls(points, solve(chunk[:mid]), solve(chunk[mid:]))

    return solve(idx)


def chan(points: np.ndarray) -> list[int]:
    """Chan's output-sensitive algorithm: guess h <= m = 2^(2^t), build
    ceil(n/m) sub-hulls of size m, then wrap at most m steps using
    tangent binary searches into each sub-hull."""
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    if n < 3:
        return list(range(n))
    t = 1
    while True:
        m = min(n, 2 ** (2**t))
        result = _chan_attempt(points, m)
        if result is not None:
            return result
        t += 1


def _tangent_search(points: np.ndarray, hull: list[int], p: int) -> int:
    """Index (into ``hull``) of the right tangent vertex from external
    point ``p`` (the vertex maximising the CCW angle), by linear scan --
    sub-hulls are small enough that the O(log) search is not worth the
    degenerate-case complexity here."""
    best = hull[0]
    for v in hull[1:]:
        if v == p:
            continue
        t = _orient2d(points, p, best, v)
        if t < 0 or (
            t == 0
            and float((points[v] - points[p]) @ (points[v] - points[p]))
            > float((points[best] - points[p]) @ (points[best] - points[p]))
        ):
            best = v
    return best


def _chan_attempt(points: np.ndarray, m: int) -> list[int] | None:
    n = points.shape[0]
    groups = [np.arange(s, min(s + m, n)) for s in range(0, n, m)]
    sub_hulls: list[list[int]] = []
    for g in groups:
        local = monotone_chain(points[g])
        sub_hulls.append([int(g[i]) for i in local])
    start = int(_lex_order(points)[0])
    hull = [start]
    current = start
    for _ in range(m):
        candidates = [
            _tangent_search(points, sh, current)
            for sh in sub_hulls
            if not (len(sh) == 1 and sh[0] == current)
        ]
        best = None
        for c in candidates:
            if c == current:
                continue
            if best is None:
                best = c
                continue
            t = _orient2d(points, current, best, c)
            if t < 0 or (
                t == 0
                and float((points[c] - points[current]) @ (points[c] - points[current]))
                > float((points[best] - points[current]) @ (points[best] - points[current]))
            ):
                best = c
        if best is None:
            return None
        if best == start:
            return hull
        hull.append(best)
        current = best
    return None  # m was too small; square it and retry
