"""Rendering and the ratchet baseline for ``repro effects``.

Three output formats:

* **text** -- one finding per line plus a summary, for humans and CI
  logs;
* **JSON** -- the full result (findings, suppressed findings, shared
  sites, imprecision notes), round-trippable via
  :func:`findings_from_json`;
* **SARIF 2.1.0** -- the minimal valid subset (tool driver + rule
  table + results with physical locations) so code hosts can annotate
  diffs.

The **baseline** (``analyze-baseline.json``, committed) is a ratchet:
CI fails when a finding appears that the baseline does not carry, or
when the number of ``# repro: noqa`` comments covering RPREFF rules
grows.  Fixing a finding and shrinking the baseline is always allowed;
the file for a clean tree is an empty list and a zero count.
"""

from __future__ import annotations

from .checks import RULES, AnalysisResult, Finding

__all__ = [
    "render_text",
    "to_json",
    "findings_from_json",
    "findings_to_sarif",
    "to_sarif",
    "baseline_payload",
    "compare_baseline",
]

JSON_SCHEMA_VERSION = 1
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(result: AnalysisResult, verbose: bool = False) -> str:
    lines = [f.format() for f in result.findings]
    n_files = len(result.program.files)
    n_fns = len(result.analysis.fns)
    n_sites = len(result.sites())
    summary = (
        f"repro effects: {len(result.findings)} finding(s), "
        f"{len(result.suppressed)} suppressed; "
        f"{n_files} file(s), {n_fns} function(s), "
        f"{n_sites} shared-effect site(s)"
    )
    if verbose:
        lines.append("shared-effect sites:")
        lines.extend(f"  {s.format()}" for s in result.sites())
        notes = result.notes()
        if notes:
            lines.append(f"imprecision notes ({len(notes)}):")
            lines.extend(f"  {n}" for n in notes)
    lines.append(summary)
    return "\n".join(lines)


def to_json(result: AnalysisResult) -> dict:
    return {
        "schema_version": JSON_SCHEMA_VERSION,
        "findings": [f.as_dict() for f in result.findings],
        "suppressed": [f.as_dict() for f in result.suppressed],
        "sites": [s.as_dict() for s in result.sites()],
        "notes": result.notes(),
        "files": len(result.program.files),
        "functions": len(result.analysis.fns),
    }


def findings_from_json(payload: dict) -> list[Finding]:
    return [Finding.from_dict(d) for d in payload.get("findings", [])]


def findings_to_sarif(tool_name: str, rules_table: dict, findings) -> dict:
    """SARIF 2.1.0 for any analyzer in this package.

    ``findings`` is any sequence of objects with ``rule_id``/``path``/
    ``line``/``col`` (1-based)/``message`` attributes -- both
    :class:`Finding` and the linter's ``Violation`` qualify, which is
    how ``repro lint``, ``repro effects`` and ``repro hotpath`` share
    one emitter (one CI artifact per analyzer, same shape).
    """
    rules = [
        {
            "id": rid,
            "name": name,
            "shortDescription": {"text": summary},
        }
        for rid, (name, summary) in sorted(rules_table.items())
    ]
    results = [
        {
            "ruleId": f.rule_id,
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path},
                        "region": {
                            "startLine": max(1, f.line),
                            "startColumn": max(1, f.col),
                        },
                    }
                }
            ],
        }
        for f in findings
    ]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "informationUri": "https://example.invalid/repro",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def to_sarif(result: AnalysisResult) -> dict:
    return findings_to_sarif("repro-effects", RULES, result.findings)


# -- baseline ratchet ----------------------------------------------------
#
# The ratchet logic is shared by every analyzer and lives in
# analyze/baseline.py; the re-exports below keep the historical import
# path (`from .report import compare_baseline`) working.

from .baseline import (  # noqa: E402  (re-export)
    _canon_path,
    baseline_payload,
    compare_baseline,
    load_baseline,
    save_baseline,
)

__all__ += ["load_baseline", "save_baseline", "_canon_path"]
