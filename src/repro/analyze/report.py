"""Rendering and the ratchet baseline for ``repro effects``.

Three output formats:

* **text** -- one finding per line plus a summary, for humans and CI
  logs;
* **JSON** -- the full result (findings, suppressed findings, shared
  sites, imprecision notes), round-trippable via
  :func:`findings_from_json`;
* **SARIF 2.1.0** -- the minimal valid subset (tool driver + rule
  table + results with physical locations) so code hosts can annotate
  diffs.

The **baseline** (``analyze-baseline.json``, committed) is a ratchet:
CI fails when a finding appears that the baseline does not carry, or
when the number of ``# repro: noqa`` comments covering RPREFF rules
grows.  Fixing a finding and shrinking the baseline is always allowed;
the file for a clean tree is an empty list and a zero count.
"""

from __future__ import annotations

import json
from pathlib import Path

from .checks import RULES, AnalysisResult, Finding

__all__ = [
    "render_text",
    "to_json",
    "findings_from_json",
    "findings_to_sarif",
    "to_sarif",
    "baseline_payload",
    "compare_baseline",
]

JSON_SCHEMA_VERSION = 1
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(result: AnalysisResult, verbose: bool = False) -> str:
    lines = [f.format() for f in result.findings]
    n_files = len(result.program.files)
    n_fns = len(result.analysis.fns)
    n_sites = len(result.sites())
    summary = (
        f"repro effects: {len(result.findings)} finding(s), "
        f"{len(result.suppressed)} suppressed; "
        f"{n_files} file(s), {n_fns} function(s), "
        f"{n_sites} shared-effect site(s)"
    )
    if verbose:
        lines.append("shared-effect sites:")
        lines.extend(f"  {s.format()}" for s in result.sites())
        notes = result.notes()
        if notes:
            lines.append(f"imprecision notes ({len(notes)}):")
            lines.extend(f"  {n}" for n in notes)
    lines.append(summary)
    return "\n".join(lines)


def to_json(result: AnalysisResult) -> dict:
    return {
        "schema_version": JSON_SCHEMA_VERSION,
        "findings": [f.as_dict() for f in result.findings],
        "suppressed": [f.as_dict() for f in result.suppressed],
        "sites": [s.as_dict() for s in result.sites()],
        "notes": result.notes(),
        "files": len(result.program.files),
        "functions": len(result.analysis.fns),
    }


def findings_from_json(payload: dict) -> list[Finding]:
    return [Finding.from_dict(d) for d in payload.get("findings", [])]


def findings_to_sarif(tool_name: str, rules_table: dict, findings) -> dict:
    """SARIF 2.1.0 for any analyzer in this package.

    ``findings`` is any sequence of objects with ``rule_id``/``path``/
    ``line``/``col`` (1-based)/``message`` attributes -- both
    :class:`Finding` and the linter's ``Violation`` qualify, which is
    how ``repro lint``, ``repro effects`` and ``repro hotpath`` share
    one emitter (one CI artifact per analyzer, same shape).
    """
    rules = [
        {
            "id": rid,
            "name": name,
            "shortDescription": {"text": summary},
        }
        for rid, (name, summary) in sorted(rules_table.items())
    ]
    results = [
        {
            "ruleId": f.rule_id,
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path},
                        "region": {
                            "startLine": max(1, f.line),
                            "startColumn": max(1, f.col),
                        },
                    }
                }
            ],
        }
        for f in findings
    ]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "informationUri": "https://example.invalid/repro",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def to_sarif(result: AnalysisResult) -> dict:
    return findings_to_sarif("repro-effects", RULES, result.findings)


# -- baseline ratchet ----------------------------------------------------


def baseline_payload(result, suppression_key: str = "rpreff_suppressions") -> dict:
    """The committed ratchet payload.  ``result`` is any object with
    ``findings`` and a ``suppressions()`` method -- effects and hotpath
    results both qualify; each analyzer pins its own suppression count
    under its own key (``rpreff_suppressions`` / ``rprhot_suppressions``).
    """
    return {
        "version": 1,
        "findings": sorted(
            (
                {"rule_id": f.rule_id, "path": f.path, "line": f.line}
                for f in result.findings
            ),
            key=lambda d: (d["path"], d["line"], d["rule_id"]),
        ),
        suppression_key: len(result.suppressions()),
    }


def load_baseline(path: str | Path) -> dict:
    return json.loads(Path(path).read_text(encoding="utf-8"))


def save_baseline(
    path: str | Path,
    result,
    suppression_key: str = "rpreff_suppressions",
) -> None:
    Path(path).write_text(
        json.dumps(baseline_payload(result, suppression_key), indent=2) + "\n",
        encoding="utf-8",
    )


def _canon_path(path: str) -> str:
    """Anchor a finding path at ``src/`` when present, so a baseline
    written from the repo root still matches an absolute-path run."""
    path = path.replace("\\", "/")
    idx = path.find("src/")
    return path[idx:] if idx >= 0 else path


def compare_baseline(
    result,
    baseline: dict,
    suppression_key: str = "rpreff_suppressions",
) -> list[str]:
    """Ratchet check; returns human-readable problems (empty == pass).

    Lines may drift, so baseline findings match on (rule, path) with a
    per-pair budget: more findings of a rule in a file than the
    baseline carries is a regression; fewer is progress (tighten the
    baseline at leisure).
    """
    problems: list[str] = []
    budget: dict[tuple[str, str], int] = {}
    for d in baseline.get("findings", []):
        key = (d["rule_id"], _canon_path(d["path"]))
        budget[key] = budget.get(key, 0) + 1
    for f in result.findings:
        key = (f.rule_id, _canon_path(f.path))
        if budget.get(key, 0) > 0:
            budget[key] -= 1
        else:
            problems.append(f"new finding not in baseline: {f.format()}")
    label = suppression_key.split("_", 1)[0].upper()
    allowed = int(baseline.get(suppression_key, 0))
    actual = len(result.suppressions())
    if actual > allowed:
        problems.append(
            f"{label} suppression count grew: {actual} > baseline {allowed} "
            "(fix the finding instead of suppressing, or consciously "
            "update the baseline)"
        )
    return problems
