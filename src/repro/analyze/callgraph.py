"""Whole-program index: modules, classes, functions, types, calls.

The analyzer needs to answer, for an arbitrary expression in an
arbitrary function, "what object is this, and what happens if you call
it?".  Full Python type inference is out of reach; this module
implements the small, honest fragment the repository's concurrency
discipline actually depends on:

* classes are indexed by qualified name and matched by *bare* name at
  use sites (``AtomicCell(...)`` resolves to the atomics class whether
  imported, aliased, or redefined in a fixture program);
* attribute types come from ``self.x = ...`` assignments (constructor
  calls, containers of constructor calls, lambdas, booleans of those);
* local variables get flow-insensitive types from assignments and
  ``for`` targets (``for cell in self._cells`` types ``cell`` as the
  container's element class);
* parameters get types propagated from call-site arguments during the
  interprocedural fixpoint, which is how a helper that receives a
  shared slot three calls deep is still seen mutating shared state;
* method calls resolve through the static receiver class *and every
  subclass that overrides the method* (dynamic dispatch over the known
  hierarchy); truly dynamic dispatch (``getattr``, ``eval``) is
  lattice top at the call site.

Known unsoundness holes are enumerated in ARCHITECTURE.md; the
soundness differential test (dynamic sites must be a subset of static
sites) bounds their blast radius on the shipped tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..lint.core import LintedFile, Violation, is_step_generator, load_files
from .effects import (
    ATOMIC_CLASS_NAMES,
    EFFECT_ALLOWLIST,
    MUTEX_CLASS_NAMES,
)

__all__ = ["TRef", "ClassInfo", "FunctionInfo", "Program", "build_program"]

# A type reference: ("cls", name) instance of a class; ("elem", name)
# container whose elements are instances of name; ("func", qualname)
# a specific internal function or lambda; ("external",) anything else.
TRef = tuple
EXTERNAL: TRef = ("external",)

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _bare(name: str) -> str:
    return name.rsplit(".", 1)[-1]


@dataclass
class FunctionInfo:
    qualname: str
    module: str
    path: str
    node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda
    cls: "ClassInfo | None" = None
    allowlisted: bool = False
    is_generator: bool = False
    is_step_gen: bool = False
    param_names: tuple[str, ...] = ()
    #: call-site argument types, grown monotonically by the fixpoint
    param_types: dict[str, set] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return _bare(self.qualname)

    @property
    def is_init(self) -> bool:
        return self.name in ("__init__", "__post_init__", "__new__")

    @property
    def line(self) -> int:
        return getattr(self.node, "lineno", 1)


@dataclass
class ClassInfo:
    qualname: str
    module: str
    path: str
    node: ast.ClassDef
    base_names: tuple[str, ...] = ()
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    attr_types: dict[str, set] = field(default_factory=dict)
    #: attrs holding a Mutex (the lock identities of the lockset check)
    mutex_attrs: set[str] = field(default_factory=set)
    #: attrs holding an atomic cell or a container of atomic cells
    atomic_attrs: set[str] = field(default_factory=set)
    #: attrs holding shared-element instances or containers thereof
    shared_container_attrs: set[str] = field(default_factory=set)
    #: attr roots written outside __init__ anywhere in the program
    #: (grown by the fixpoint; feeds plain_shared_fields)
    mutated_fields: set[str] = field(default_factory=set)
    #: True when instances of this class are reachable from another
    #: class's attributes (i.e. they live inside a shared structure)
    is_referenced: bool = False

    @property
    def name(self) -> str:
        return _bare(self.qualname)

    def is_atomic(self) -> bool:
        return self.name in ATOMIC_CLASS_NAMES

    def is_shared_element(self) -> bool:
        """A class whose instances sit inside a shared structure and
        carry atomic fields -- its plain mutable fields are shared
        memory (``_TASSlot.data``)."""
        return bool(self.atomic_attrs) and self.is_referenced

    def plain_shared_fields(self) -> set[str]:
        if not self.is_shared_element():
            return set()
        return {
            a for a in self.mutated_fields
            if a not in self.atomic_attrs and a not in self.mutex_attrs
        }

    def owns_mutex(self) -> bool:
        return bool(self.mutex_attrs)


class Program:
    """The indexed program: every parsed file plus derived tables."""

    def __init__(self, files: Sequence[LintedFile], errors: Sequence[Violation] = ()):
        self.files = list(files)
        self.errors = list(errors)
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        #: defs nested inside other functions (``process`` inside
        #: ``parallel_hull``).  Kept out of ``functions`` on purpose:
        #: the effect fixpoint iterates ``functions`` and its committed
        #: baseline must not shift; the hot-path pass reads both via
        #: :meth:`all_functions`.
        self.nested_functions: dict[str, FunctionInfo] = {}
        self._by_bare_class: dict[str, list[ClassInfo]] = {}
        self._by_bare_func: dict[str, list[FunctionInfo]] = {}
        self._by_bare_nested: dict[str, list[FunctionInfo]] = {}
        self._subclasses: dict[str, set[str]] = {}
        for f in self.files:
            self._index_file(f)
        self._link_hierarchy()
        self._infer_class_attrs()

    # -- indexing --------------------------------------------------------

    @staticmethod
    def _module_name(f: LintedFile) -> str:
        parts = [p for p in f.parts if p]
        if parts and parts[-1].endswith(".py"):
            parts[-1] = parts[-1][:-3]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts) or f.path.stem

    @staticmethod
    def _allowlisted(f: LintedFile) -> bool:
        return any(f.is_module(m) for m in EFFECT_ALLOWLIST)

    def _register_function(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        f: LintedFile,
        module: str,
        cls: ClassInfo | None,
        prefix: str,
    ) -> FunctionInfo:
        qual = f"{prefix}.{node.name}"
        args = node.args
        params = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg:
            params.append(args.vararg.arg)
        if args.kwarg:
            params.append(args.kwarg.arg)
        info = FunctionInfo(
            qualname=qual,
            module=module,
            path=f.posix,
            node=node,
            cls=cls,
            allowlisted=self._allowlisted(f),
            is_generator=any(
                isinstance(n, (ast.Yield, ast.YieldFrom))
                for n in ast.walk(node)
                if not isinstance(n, _FUNC_NODES)
            ) and _yields_shallow(node),
            is_step_gen=is_step_generator(node),
            param_names=tuple(params),
        )
        self.functions[qual] = info
        self._by_bare_func.setdefault(node.name, []).append(info)
        for sub in ast.walk(node):
            if isinstance(sub, ast.Lambda):
                largs = sub.args
                lam = FunctionInfo(
                    qualname=f"{qual}.<lambda:{sub.lineno}:{sub.col_offset}>",
                    module=module,
                    path=f.posix,
                    node=sub,
                    cls=cls,
                    allowlisted=info.allowlisted,
                    param_names=tuple(
                        a.arg
                        for a in largs.posonlyargs + largs.args + largs.kwonlyargs
                    ),
                )
                self.functions[lam.qualname] = lam
        self._register_nested(node, f, module, cls, qual)
        return info

    def _register_nested(
        self,
        outer: ast.FunctionDef | ast.AsyncFunctionDef,
        f: LintedFile,
        module: str,
        cls: ClassInfo | None,
        prefix: str,
    ) -> None:
        """Index defs nested in ``outer`` (recursively) into
        :attr:`nested_functions` under ``<outer>.<locals>.<name>``."""

        def walk(node, pfx):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, _FUNC_NODES):
                    qual = f"{pfx}.<locals>.{child.name}"
                    args = child.args
                    params = [
                        a.arg
                        for a in args.posonlyargs + args.args + args.kwonlyargs
                    ]
                    info = FunctionInfo(
                        qualname=qual,
                        module=module,
                        path=f.posix,
                        node=child,
                        cls=cls,
                        allowlisted=self._allowlisted(f),
                        param_names=tuple(params),
                    )
                    self.nested_functions[qual] = info
                    self._by_bare_nested.setdefault(child.name, []).append(info)
                    walk(child, qual)
                elif isinstance(child, (ast.ClassDef, ast.Lambda)):
                    continue  # local classes / lambdas: handled elsewhere
                else:
                    walk(child, pfx)

        walk(outer, prefix)

    def _index_file(self, f: LintedFile) -> None:
        module = self._module_name(f)
        for node in f.tree.body:
            if isinstance(node, _FUNC_NODES):
                self._register_function(node, f, module, None, module)
            elif isinstance(node, ast.ClassDef):
                qual = f"{module}.{node.name}"
                cls = ClassInfo(
                    qualname=qual,
                    module=module,
                    path=f.posix,
                    node=node,
                    base_names=tuple(
                        _base_name(b) for b in node.bases if _base_name(b)
                    ),
                )
                self.classes[qual] = cls
                self._by_bare_class.setdefault(node.name, []).append(cls)
                for sub in node.body:
                    if isinstance(sub, _FUNC_NODES):
                        cls.methods[sub.name] = self._register_function(
                            sub, f, module, cls, qual
                        )

    def _link_hierarchy(self) -> None:
        for cls in self.classes.values():
            for base in cls.base_names:
                for parent in self._by_bare_class.get(_bare(base), []):
                    self._subclasses.setdefault(parent.qualname, set()).add(cls.qualname)
        # transitive closure (hierarchies here are tiny)
        changed = True
        while changed:
            changed = False
            for q, subs in self._subclasses.items():
                for s in list(subs):
                    extra = self._subclasses.get(s, set()) - subs
                    if extra:
                        subs |= extra
                        changed = True

    # -- type machinery --------------------------------------------------

    def classes_named(self, name: str) -> list[ClassInfo]:
        return self._by_bare_class.get(_bare(name), [])

    def module_functions_named(self, name: str) -> list[FunctionInfo]:
        """Module-level (non-method) functions with this bare name."""
        return [f for f in self._by_bare_func.get(name, []) if f.cls is None]

    def all_functions(self) -> list[FunctionInfo]:
        """Top-level + method + nested defs (lambdas included)."""
        return list(self.functions.values()) + list(self.nested_functions.values())

    def functions_named(self, name: str) -> list[FunctionInfo]:
        """Every function/method/nested def with this bare name."""
        return self._by_bare_func.get(name, []) + self._by_bare_nested.get(name, [])

    def subclasses_of(self, cls: ClassInfo) -> list[ClassInfo]:
        return [self.classes[q] for q in self._subclasses.get(cls.qualname, ())]

    def mro_lookup(self, cls: ClassInfo, method: str) -> FunctionInfo | None:
        seen = set()
        work = [cls]
        while work:
            c = work.pop(0)
            if c.qualname in seen:
                continue
            seen.add(c.qualname)
            if method in c.methods:
                return c.methods[method]
            for base in c.base_names:
                work.extend(self.classes_named(base))
        return None

    def resolve_method(self, cls: ClassInfo, method: str) -> list[FunctionInfo]:
        """The statically-known dispatch set: the MRO resolution plus
        every subclass override (the receiver may be any subtype)."""
        out = []
        found = self.mro_lookup(cls, method)
        if found is not None:
            out.append(found)
        for sub in self.subclasses_of(cls):
            if method in sub.methods:
                out.append(sub.methods[method])
        return out

    def type_of_call(self, name: str) -> set:
        """Type of ``Name(...)``: instance of a known class, a known
        function's return (opaque), or external."""
        classes = self.classes_named(name)
        if classes:
            return {("cls", c.qualname) for c in classes}
        if name in ATOMIC_CLASS_NAMES or name in MUTEX_CLASS_NAMES:
            return {("cls", name)}  # undeclared fixture/bare atomic
        return {EXTERNAL}

    def class_of_tref(self, tref: TRef) -> ClassInfo | None:
        if tref[0] not in ("cls", "elem"):
            return None
        q = tref[1]
        if q in self.classes:
            return self.classes[q]
        named = self.classes_named(q)
        return named[0] if named else None

    # -- attribute-type inference ---------------------------------------

    def _infer_class_attrs(self) -> None:
        for cls in self.classes.values():
            for m in cls.methods.values():
                for stmt in ast.walk(m.node):
                    targets: list[ast.expr] = []
                    value: ast.expr | None = None
                    if isinstance(stmt, ast.Assign):
                        targets, value = stmt.targets, stmt.value
                    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                        targets, value = [stmt.target], stmt.value
                    if value is None:
                        continue
                    for t in targets:
                        if (
                            isinstance(t, ast.Attribute)
                            and isinstance(t.value, ast.Name)
                            and t.value.id == "self"
                        ):
                            trefs = self.infer_literal(value, owner=m.qualname)
                            cls.attr_types.setdefault(t.attr, set()).update(trefs)
        # derived: mutex/atomic/shared-container flags + referenced marks
        for cls in self.classes.values():
            for attr, trefs in cls.attr_types.items():
                for tref in trefs:
                    if tref[0] not in ("cls", "elem"):
                        continue
                    bare = _bare(tref[1])
                    if bare in MUTEX_CLASS_NAMES and tref[0] == "cls":
                        cls.mutex_attrs.add(attr)
                    elif bare in ATOMIC_CLASS_NAMES:
                        cls.atomic_attrs.add(attr)
                    ref = self.class_of_tref(tref)
                    if ref is not None and ref.qualname != cls.qualname:
                        ref.is_referenced = True
        for cls in self.classes.values():
            for attr, trefs in cls.attr_types.items():
                for tref in trefs:
                    ref = self.class_of_tref(tref)
                    if ref is not None and (ref.is_atomic() or ref.is_shared_element()):
                        cls.shared_container_attrs.add(attr)

    def infer_literal(self, expr: ast.expr, owner: str = "") -> set:
        """Types of a right-hand side, for attribute inference: direct
        constructor calls, containers of them, lambdas, bool-joins."""
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            return self.type_of_call(expr.func.id)
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
            return {EXTERNAL}
        if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
            out: set = set()
            for e in expr.elts:
                out |= {("elem", t[1]) for t in self.infer_literal(e, owner)
                        if t[0] == "cls"}
            return out or {EXTERNAL}
        if isinstance(expr, ast.Dict):
            out = set()
            for v in expr.values:
                if v is not None:
                    out |= {("elem", t[1]) for t in self.infer_literal(v, owner)
                            if t[0] == "cls"}
            return out or {EXTERNAL}
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return {("elem", t[1]) for t in self.infer_literal(expr.elt, owner)
                    if t[0] == "cls"} or {EXTERNAL}
        if isinstance(expr, ast.DictComp):
            return {("elem", t[1]) for t in self.infer_literal(expr.value, owner)
                    if t[0] == "cls"} or {EXTERNAL}
        if isinstance(expr, ast.Lambda):
            qual = f"{owner}.<lambda:{expr.lineno}:{expr.col_offset}>"
            return {("func", qual)}
        if isinstance(expr, ast.BoolOp):
            out = set()
            for v in expr.values:
                out |= self.infer_literal(v, owner)
            return out
        if isinstance(expr, ast.IfExp):
            return self.infer_literal(expr.body, owner) | self.infer_literal(
                expr.orelse, owner
            )
        if isinstance(expr, ast.Name):
            return {EXTERNAL}
        return {EXTERNAL}


def _base_name(expr: ast.expr) -> str:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return ""


def _yields_shallow(node) -> bool:
    from ..lint.core import walk_shallow

    return any(isinstance(n, (ast.Yield, ast.YieldFrom)) for n in walk_shallow(node))


def build_program(
    paths: Iterable[str],
    sources: dict[str, str] | None = None,
) -> Program:
    files, errors = load_files(list(paths), sources=sources)
    return Program(files, errors)
