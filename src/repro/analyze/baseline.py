"""The shared ratchet baseline for every ``repro`` analyzer.

One schema, one path canonicalization, one strict-decrease rule --
``repro effects`` (``analyze-baseline.json``), ``repro hotpath``
(``hotpath-baseline.json``) and ``repro fpcheck``
(``fpcheck-baseline.json``) all commit the same payload shape and
ratchet the same way:

* a finding that the baseline does not carry fails CI;
* a growing ``# repro: noqa`` count for the analyzer's rule family
  fails CI (each analyzer pins its count under its own key:
  ``rpreff_suppressions`` / ``rprhot_suppressions`` /
  ``rprfp_suppressions``);
* fixing findings and shrinking the baseline is always allowed -- the
  file for a clean tree is an empty list and a zero count.

``result`` is any object with a ``findings`` list (``rule_id`` /
``path`` / ``line`` attributes) and a ``suppressions()`` method --
the effects, hotpath, and fpcheck results all qualify.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "baseline_payload",
    "load_baseline",
    "save_baseline",
    "compare_baseline",
    "assert_strict_decrease",
]


def baseline_payload(result, suppression_key: str = "rpreff_suppressions") -> dict:
    """The committed ratchet payload for any analyzer result."""
    return {
        "version": 1,
        "findings": sorted(
            (
                {"rule_id": f.rule_id, "path": f.path, "line": f.line}
                for f in result.findings
            ),
            key=lambda d: (d["path"], d["line"], d["rule_id"]),
        ),
        suppression_key: len(result.suppressions()),
    }


def load_baseline(path: str | Path) -> dict:
    return json.loads(Path(path).read_text(encoding="utf-8"))


def save_baseline(
    path: str | Path,
    result,
    suppression_key: str = "rpreff_suppressions",
) -> None:
    Path(path).write_text(
        json.dumps(baseline_payload(result, suppression_key), indent=2) + "\n",
        encoding="utf-8",
    )


def _canon_path(path: str) -> str:
    """Anchor a finding path at ``src/`` when present, so a baseline
    written from the repo root still matches an absolute-path run."""
    path = path.replace("\\", "/")
    idx = path.find("src/")
    return path[idx:] if idx >= 0 else path


def compare_baseline(
    result,
    baseline: dict,
    suppression_key: str = "rpreff_suppressions",
) -> list[str]:
    """Ratchet check; returns human-readable problems (empty == pass).

    Lines may drift, so baseline findings match on (rule, path) with a
    per-pair budget: more findings of a rule in a file than the
    baseline carries is a regression; fewer is progress (tighten the
    baseline at leisure).
    """
    problems: list[str] = []
    budget: dict[tuple[str, str], int] = {}
    for d in baseline.get("findings", []):
        key = (d["rule_id"], _canon_path(d["path"]))
        budget[key] = budget.get(key, 0) + 1
    for f in result.findings:
        key = (f.rule_id, _canon_path(f.path))
        if budget.get(key, 0) > 0:
            budget[key] -= 1
        else:
            problems.append(f"new finding not in baseline: {f.format()}")
    label = suppression_key.split("_", 1)[0].upper()
    allowed = int(baseline.get(suppression_key, 0))
    actual = len(result.suppressions())
    if actual > allowed:
        problems.append(
            f"{label} suppression count grew: {actual} > baseline {allowed} "
            "(fix the finding instead of suppressing, or consciously "
            "update the baseline)"
        )
    return problems


def assert_strict_decrease(
    old: dict, new: dict, suppression_key: str = "rpreff_suppressions"
) -> list[str]:
    """The baseline may only shrink.  Returns problems for any
    (rule, path) pair whose budget grew, or a grown suppression count
    -- the check CI runs when a committed baseline file itself changes.
    """

    def budget(payload: dict) -> dict:
        out: dict[tuple[str, str], int] = {}
        for d in payload.get("findings", []):
            key = (d["rule_id"], _canon_path(d["path"]))
            out[key] = out.get(key, 0) + 1
        return out

    problems: list[str] = []
    old_budget, new_budget = budget(old), budget(new)
    for key, count in sorted(new_budget.items()):
        if count > old_budget.get(key, 0):
            problems.append(
                f"baseline budget for {key[0]} in {key[1]} grew: "
                f"{old_budget.get(key, 0)} -> {count}"
            )
    if int(new.get(suppression_key, 0)) > int(old.get(suppression_key, 0)):
        problems.append(
            f"baseline {suppression_key} grew: "
            f"{old.get(suppression_key, 0)} -> {new.get(suppression_key, 0)}"
        )
    return problems
