"""The relative-rounding-error domain behind ``repro fpcheck``.

The batched predicate kernels are *filtered*: a float sign is trusted
only when its margin clears a hand-written forward-error envelope, and
PR 3 proved by counterexample that a hand-written envelope can be too
small (the ``det_with_error_bound`` eps-Hadamard bug, honest note 8).
This module gives those envelopes a checkable semantics: every
expression in a kernel gets a symbolic first-order bound of the form
``k * eps * |E|`` -- an *error polynomial* over named magnitude atoms
times the machine epsilon -- derived from the arithmetic itself via
Higham-style ``(1+eps)^k`` accounting, so the committed constant can be
*compared* against the derived bound instead of trusted.

Three layers live here; :mod:`repro.analyze.fpcheck` drives them:

**Polynomials.**  A bound is a sparse polynomial with nonnegative float
coefficients over *atoms* -- named nonnegative quantities such as ``S``
(a coordinate magnitude), ``H`` (a Hadamard row-norm product), or the
ambient dimension ``d``.  Error polynomials are denominated in units of
``eps`` (binary64 machine epsilon, ``2^-52``); one rounding of a value
with magnitude ``m`` charges ``0.5 * m`` (the unit roundoff ``u =
eps/2``).

**Transfer rules.**  :class:`FpVal` carries ``(mag, err)``: ``mag``
upper-bounds the exact absolute value, ``err * eps`` upper-bounds the
first-order forward error of the computed float.  The rules for
``+ - * / dot einsum sum fabs max`` are the classical ones (Higham,
*Accuracy and Stability of Numerical Algorithms*, ch. 3):

====================  =====================  ============================
operation             magnitude              error (eps units)
====================  =====================  ============================
``a + b``, ``a - b``  ``ma + mb``            ``ea + eb + 0.5(ma + mb)``
``a * b``             ``ma * mb``            ``ea*mb + eb*ma + 0.5*ma*mb``
``dot`` over ``L``    ``L*ma*mb``            ``L*(ea*mb + eb*ma) + 0.5*L^2*ma*mb``
``sum`` over ``L``    ``L*m``                ``L*e + 0.5*L^2*m``
``cross`` (3-d)       ``2*ma*mb``            ``2*(ea*mb + eb*ma) + 2*ma*mb``
``abs``, ``max``      ``m``                  ``e``  (exact operations)
``sqrt``              ``m``                  ``e + 0.5*m``  (atoms >= 1)
====================  =====================  ============================

**Domination.**  ``dominates(big, small)`` decides ``big >= small`` for
all atom values ``>= 1`` by monomial covering: a monomial of ``small``
is covered by monomials of ``big`` with pointwise-greater-or-equal
exponents and enough coefficient capacity.  ``fact`` rewrite rules
(``E^2 <= H`` style, each a true pointwise inequality at the measured
atoms) are applied to the *derived* side first -- substituting an upper
bound into an upper bound is sound.

Honest unsoundness holes, mirrored in ARCHITECTURE.md: the accounting
is first order in ``u`` (no ``(1+u)^k`` compounding, no fma modeling);
the domination order assumes every atom ``>= 1``; ``bind``/``in``
re-declarations cut error chains (the envelope arithmetic's own
rounding is second order and absorbed into committed constants, checked
structurally by RPRFP003 instead); and ``call`` clauses are assumed
primitive models (e.g. for LAPACK's determinant), validated only by the
dynamic differential in ``tests/analyze/test_fpcheck_soundness.py``.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "EPS",
    "Poly",
    "poly_zero",
    "poly_const",
    "poly_atom",
    "poly_add",
    "poly_scale",
    "poly_mul",
    "poly_pow",
    "poly_sub_atom",
    "poly_eval",
    "poly_format",
    "parse_poly",
    "rewrite",
    "dominates",
    "FpVal",
    "TOP",
    "NONFP",
    "fp_exactval",
    "fp_bind",
    "fp_join",
    "fp_add",
    "fp_mul",
    "fp_dot",
    "fp_sum",
    "fp_cross",
    "fp_exact_op",
    "fp_sqrt",
    "FpClause",
    "FpFnAnnotation",
    "FpAnnotationError",
    "parse_fp_annotations",
]

#: binary64 machine epsilon -- the unit error polynomials are stated in.
EPS = float(np.finfo(np.float64).eps)

# -- polynomials ---------------------------------------------------------

#: a monomial is a sorted tuple of (atom, positive exponent) pairs; a
#: polynomial maps monomials to nonnegative float coefficients.
Mono = tuple
Poly = dict

_ONE: Mono = ()


def poly_zero() -> Poly:
    return {}


def poly_const(c: float) -> Poly:
    c = float(c)
    return {} if c == 0.0 else {_ONE: c}


def poly_atom(name: str, exp: int = 1) -> Poly:
    if exp == 0:
        return poly_const(1.0)
    return {((name, int(exp)),): 1.0}


def poly_add(*ps: Poly) -> Poly:
    out: Poly = {}
    for p in ps:
        for m, c in p.items():
            out[m] = out.get(m, 0.0) + c
    return {m: c for m, c in out.items() if c != 0.0}


def poly_scale(p: Poly, c: float) -> Poly:
    c = float(c)
    if c == 0.0:
        return {}
    return {m: k * c for m, k in p.items()}


def _mono_mul(a: Mono, b: Mono) -> Mono:
    exps: dict[str, int] = dict(a)
    for atom, e in b:
        exps[atom] = exps.get(atom, 0) + e
    return tuple(sorted((k, v) for k, v in exps.items() if v))


def poly_mul(a: Poly, b: Poly) -> Poly:
    out: Poly = {}
    for ma, ca in a.items():
        for mb, cb in b.items():
            m = _mono_mul(ma, mb)
            out[m] = out.get(m, 0.0) + ca * cb
    return {m: c for m, c in out.items() if c != 0.0}


def poly_pow(p: Poly, n: int) -> Poly:
    out = poly_const(1.0)
    for _ in range(int(n)):
        out = poly_mul(out, p)
    return out


def poly_sub_atom(p: Poly, atom: str, value: float) -> Poly:
    """Substitute a concrete value for one atom (pins ``d`` / ``n``)."""
    out: Poly = {}
    for m, c in p.items():
        coef = c
        rest = []
        for a, e in m:
            if a == atom:
                coef *= float(value) ** e
            else:
                rest.append((a, e))
        key = tuple(rest)
        out[key] = out.get(key, 0.0) + coef
    return {m: c for m, c in out.items() if c != 0.0}


def poly_atoms(p: Poly) -> set:
    return {a for m in p for a, _ in m}


def poly_eval(p: Poly, values: dict) -> float:
    """Numeric value at concrete atom assignments (all atoms needed)."""
    total = 0.0
    for m, c in p.items():
        term = c
        for atom, e in m:
            if atom not in values:
                raise KeyError(f"no value for atom {atom!r}")
            term *= float(values[atom]) ** e
        total += term
    return total


def poly_format(p: Poly) -> str:
    if not p:
        return "0"
    parts = []
    for m, c in sorted(p.items(), key=lambda kv: (-len(kv[0]), kv[0])):
        factors = [f"{c:g}"] if (c != 1.0 or not m) else []
        for atom, e in m:
            factors.append(atom if e == 1 else f"{atom}^{e}")
        parts.append("*".join(factors))
    return " + ".join(parts)


class FpAnnotationError(ValueError):
    """A malformed fp-bound clause (surfaced as RPRFP999)."""


def parse_poly(text: str) -> Poly:
    """Parse ``16*d*(d*d*H + N + 1)`` into a :class:`Poly`.

    Grammar: names (atoms), nonnegative numbers, ``+ * **`` (or ``^``),
    parentheses.  Anything else is an :class:`FpAnnotationError`.
    """
    try:
        node = ast.parse(text.replace("^", "**").strip(), mode="eval").body
    except SyntaxError as exc:
        raise FpAnnotationError(f"bad bound expression {text!r}: {exc}")

    def build(n: ast.AST) -> Poly:
        if isinstance(n, ast.Constant) and isinstance(n.value, (int, float)):
            if n.value < 0:
                raise FpAnnotationError(f"negative coefficient in {text!r}")
            return poly_const(n.value)
        if isinstance(n, ast.Name):
            return poly_atom(n.id)
        if isinstance(n, ast.BinOp):
            if isinstance(n.op, ast.Add):
                return poly_add(build(n.left), build(n.right))
            if isinstance(n.op, ast.Mult):
                return poly_mul(build(n.left), build(n.right))
            if isinstance(n.op, ast.Pow):
                if not (isinstance(n.right, ast.Constant)
                        and isinstance(n.right.value, int)
                        and n.right.value >= 0):
                    raise FpAnnotationError(
                        f"only integer powers allowed in {text!r}")
                return poly_pow(build(n.left), n.right.value)
        raise FpAnnotationError(
            f"unsupported operation in bound expression {text!r} "
            "(only + * ** of atoms and nonnegative numbers)")

    return build(node)


# -- domination ----------------------------------------------------------


def _mono_divides(small: Mono, big: Mono) -> bool:
    """Every exponent of ``small`` is <= the matching one in ``big``
    (then ``big >= small`` pointwise for atom values >= 1)."""
    exps = dict(big)
    return all(exps.get(a, 0) >= e for a, e in small)


def _mono_divide(m: Mono, by: Mono) -> Mono | None:
    exps = dict(m)
    for a, e in by:
        if exps.get(a, 0) < e:
            return None
        exps[a] -= e
    return tuple(sorted((k, v) for k, v in exps.items() if v))


def rewrite(p: Poly, facts: list) -> Poly:
    """Apply ``fact`` rules (``mono <= poly``) to an upper bound.

    Each fact is a pair ``(lhs_mono, rhs_poly)`` with the guarantee
    ``lhs <= rhs`` at the measured atom values; substituting the right
    side for the left inside an upper bound keeps it an upper bound.
    Applied to fixpoint with a small iteration cap.
    """
    for _ in range(8):
        changed = False
        out: Poly = {}
        for m, c in p.items():
            for lhs, rhs in facts:
                q = _mono_divide(m, lhs)
                if q is not None:
                    for mr, cr in poly_mul({q: c}, rhs).items():
                        out[mr] = out.get(mr, 0.0) + cr
                    changed = True
                    break
            else:
                out[m] = out.get(m, 0.0) + c
        p = out
        if not changed:
            break
    return p


def dominates(big: Poly, small: Poly, facts: list | None = None) -> bool:
    """Is ``big >= small`` for every atom assignment ``>= 1``?

    Sufficient (conservative) check: rewrite through the facts exactly
    those monomials of ``small`` that no monomial of ``big`` covers
    exponentwise (rewriting a directly-coverable monomial could only
    inflate it past the committed coefficient), then greedily cover
    each remaining monomial with coefficient capacity from monomials
    of ``big`` whose exponents dominate pointwise.  May say "no" for a
    true domination, never "yes" for a false one (within the atoms
    >= 1 regime).
    """
    if facts:
        for _ in range(8):
            out: Poly = {}
            changed = False
            for m, c in small.items():
                if any(_mono_divides(m, mb) for mb in big):
                    out[m] = out.get(m, 0.0) + c
                    continue
                for lhs, rhs in facts:
                    q = _mono_divide(m, lhs)
                    if q is not None:
                        for mr, cr in poly_mul({q: c}, rhs).items():
                            out[mr] = out.get(mr, 0.0) + cr
                        changed = True
                        break
                else:
                    out[m] = out.get(m, 0.0) + c
            small = out
            if not changed:
                break
    capacity = dict(big)
    # hardest first: most atoms, largest total degree
    order = sorted(
        small.items(),
        key=lambda kv: (-len(kv[0]), -sum(e for _, e in kv[0])),
    )
    for m, need in order:
        # cheapest covering monomial first, so big generic terms stay
        # available for the monomials only they can cover
        covers = sorted(
            (mb for mb in capacity if _mono_divides(m, mb)),
            key=lambda mb: sum(e for _, e in mb),
        )
        for mb in covers:
            take = min(need, capacity[mb])
            capacity[mb] -= take
            need -= take
            if need <= 1e-12:
                break
        if need > 1e-12:
            return False
    return True


# -- the abstract value --------------------------------------------------


@dataclass(frozen=True)
class FpVal:
    """``mag`` bounds the exact |value|.  The error splits in two:
    ``prop`` is inherited operand error, ``last`` the final-rounding
    charge of the op that produced this value; ``err = prop + last``
    (in eps units) bounds the first-order forward error of the
    computed float.  Keeping ``last`` separate is the cancellation
    rescue: a ``bind x ~ ATOM`` re-scopes the magnitude to a measured
    atom and re-charges the final rounding as ``0.5 * ATOM`` -- sound
    because ``|fl(x) - x| <= u|x|`` is a bound in the *result's*
    magnitude, not the operands' -- so ``edges = b - a`` costs
    ``0.5 * |edges|`` instead of ``0.5 * (|a| + |b|)``.

    ``kind`` is ``fp`` (tracked), ``top`` (unknown float data: bounds
    unusable), or ``other`` (non-float: indices, bools, shapes --
    carries no error).
    """

    kind: str = "fp"
    mag: Poly = field(default_factory=dict)
    prop: Poly = field(default_factory=dict)
    last: Poly = field(default_factory=dict)

    @property
    def err(self) -> Poly:
        return poly_add(self.prop, self.last)

    @property
    def is_tracked(self) -> bool:
        return self.kind == "fp"

    def format(self) -> str:
        if self.kind != "fp":
            return self.kind
        return f"|.|<={poly_format(self.mag)}, err<=({poly_format(self.err)})*eps"


TOP = FpVal(kind="top")
NONFP = FpVal(kind="other")


def fp_exactval(mag: Poly, err: Poly | None = None) -> FpVal:
    return FpVal(kind="fp", mag=mag, prop=err if err is not None else {})


def fp_bind(v: FpVal, atom_mag: Poly) -> FpVal:
    """Re-scope a value's magnitude to a measured atom.  The inherited
    error is kept; the final-rounding charge (if the value was rounded
    at all) is re-expressed against the new, tighter magnitude.  Part
    of the trusted annotation surface -- the dynamic differential is
    what validates the atom actually bounds the computed value."""
    if not v.is_tracked:
        return FpVal("fp", atom_mag, {}, poly_scale(atom_mag, 0.5))
    return FpVal(
        "fp", atom_mag, v.prop,
        poly_scale(atom_mag, 0.5) if v.last else {},
    )


def _lift(a: FpVal, b: FpVal) -> str | None:
    """Combined kind for a binary rule, or None when tracked."""
    if a.kind == "top" or b.kind == "top":
        return "top"
    if a.kind == "other" and b.kind == "other":
        return "other"
    if a.kind == "other" or b.kind == "other":
        # mixing float data with index/bool data: the result is float
        # but the non-fp side contributes nothing boundable
        return "top"
    return None


def fp_join(*vals: FpVal) -> FpVal:
    """Sound join: polynomial sum of magnitudes and errors (atoms are
    nonnegative, so the sum dominates the max).  The summed error all
    lands in ``prop``: a join point performs no rounding of its own."""
    vals = [v for v in vals if v.kind != "other"]
    if not vals:
        return NONFP
    if any(v.kind == "top" for v in vals):
        return TOP
    return FpVal(
        kind="fp",
        mag=poly_add(*(v.mag for v in vals)),
        prop=poly_add(*(v.err for v in vals)),
    )


def fp_add(a: FpVal, b: FpVal) -> FpVal:
    k = _lift(a, b)
    if k:
        return TOP if k == "top" else NONFP
    mag = poly_add(a.mag, b.mag)
    return FpVal("fp", mag, poly_add(a.err, b.err), poly_scale(mag, 0.5))


def fp_mul(a: FpVal, b: FpVal) -> FpVal:
    k = _lift(a, b)
    if k:
        return TOP if k == "top" else NONFP
    mag = poly_mul(a.mag, b.mag)
    prop = poly_add(poly_mul(a.err, b.mag), poly_mul(b.err, a.mag))
    return FpVal("fp", mag, prop, poly_scale(mag, 0.5))


def fp_dot(a: FpVal, b: FpVal, length: Poly) -> FpVal:
    """Inner product over a reduction of size ``length`` (a Poly: a dim
    atom or a constant)."""
    k = _lift(a, b)
    if k:
        return TOP if k == "top" else NONFP
    mm = poly_mul(a.mag, b.mag)
    mag = poly_mul(length, mm)
    prop = poly_mul(length, poly_add(poly_mul(a.err, b.mag),
                                     poly_mul(b.err, a.mag)))
    return FpVal(
        "fp", mag, prop,
        poly_scale(poly_mul(poly_mul(length, length), mm), 0.5),
    )


def fp_sum(a: FpVal, length: Poly) -> FpVal:
    if not a.is_tracked:
        return TOP if a.kind == "top" else NONFP
    return FpVal(
        "fp",
        poly_mul(length, a.mag),
        poly_mul(length, a.err),
        poly_scale(poly_mul(poly_mul(length, length), a.mag), 0.5),
    )


def fp_cross(a: FpVal, b: FpVal) -> FpVal:
    """3-d cross product: each component is a difference of two
    products of one entry of each operand -- two product roundings plus
    one subtraction rounding, all bounded by the component magnitude
    ``2 * ma * mb``."""
    k = _lift(a, b)
    if k:
        return TOP if k == "top" else NONFP
    mm = poly_mul(a.mag, b.mag)
    prop = poly_scale(poly_add(poly_mul(a.err, b.mag),
                               poly_mul(b.err, a.mag)), 2.0)
    return FpVal("fp", poly_scale(mm, 2.0), prop, poly_scale(mm, 2.0))


def fp_exact_op(a: FpVal) -> FpVal:
    """abs / max / min / negation: magnitude and error both preserved."""
    return a


def fp_sqrt(a: FpVal) -> FpVal:
    if not a.is_tracked:
        return a
    return FpVal("fp", a.mag, a.err, poly_scale(a.mag, 0.5))


# -- the fp-bound annotation grammar -------------------------------------

_FP_COMMENT_RE = re.compile(
    r"#\s*repro:\s*fp-bound:\s*(?P<body>.+)$", re.IGNORECASE
)
#: optional instantiation selector suffix: ``@d=3`` / ``@n=2``
_SEL_RE = re.compile(r"@\s*(?P<var>[A-Za-z_]\w*)\s*=\s*(?P<val>\d+)\s*$")
_ASSUME_RE = re.compile(
    r"^assume\s+(?P<var>[A-Za-z_]\w*)\s+in\s+(?P<lo>\d+)\s*\.\.\s*(?P<hi>\d+)$"
)
_DECL_RE = re.compile(
    r"^(?P<name>[A-Za-z_][\w.]*)\s*~\s*(?P<atom>[A-Za-z_]\w*)"
    r"(?:\s+err\s+(?P<err>.+))?$"
)
_FACT_RE = re.compile(r"^fact\s+(?P<lhs>[^<]+)<=(?P<rhs>.+)$")
_CLAIM_RE = re.compile(r"^claim\s+(?P<name>[A-Za-z_][\w.]*)\s*<=\s*(?P<rhs>.+)$")
_CALL_RE = re.compile(
    r"^call\s+(?P<name>[A-Za-z_]\w*)"
    r"(?:\s*~\s*(?P<atom>[A-Za-z_]\w*))?\s+err\s+(?P<err>.+)$"
)


@dataclass
class FpClause:
    """One parsed fp-bound clause, attached at a source line."""

    kind: str           # in | out | bind | fact | claim | call | assume |
    #                     guard | envelope
    line: int = 0
    name: str = ""      # variable / callee / assume-var name
    atom: str = ""
    err: Poly | None = None     # in/out/call error summary, claim bound
    mag_mono: Mono = ()         # fact left side
    rhs: Poly | None = None     # fact right side
    names: tuple = ()           # guard / envelope name lists
    lo: int = 0                 # assume range
    hi: int = 0
    sel: tuple | None = None    # (var, value) instantiation selector


@dataclass
class FpFnAnnotation:
    """Every fp-bound clause attached to one function."""

    qualname: str = ""
    line: int = 0
    clauses: list = field(default_factory=list)

    def assume(self) -> FpClause | None:
        for c in self.clauses:
            if c.kind == "assume":
                return c
        return None

    def selected(self, kind: str, pin: tuple | None) -> list:
        """Clauses of ``kind`` active under instantiation ``pin``
        (an ``(var, value)`` pair or None)."""
        out = []
        for c in self.clauses:
            if c.kind != kind:
                continue
            if c.sel is not None and pin is not None and c.sel != pin:
                continue
            if c.sel is not None and pin is None:
                continue
            out.append(c)
        return out

    def guard_names(self) -> set:
        out: set = set()
        for c in self.clauses:
            if c.kind == "guard":
                out.update(c.names)
        return out

    def envelope_names(self) -> set:
        out: set = set()
        for c in self.clauses:
            if c.kind == "envelope":
                out.update(c.names)
        return out

    def facts(self, pin: tuple | None = None) -> list:
        return [(c.mag_mono, c.rhs) for c in self.selected("fact", pin)]


def _parse_mono(text: str) -> Mono:
    p = parse_poly(text)
    if len(p) != 1:
        raise FpAnnotationError(f"fact left side must be one monomial: {text!r}")
    (mono, coef), = p.items()
    if coef != 1.0:
        raise FpAnnotationError(
            f"fact left side must have coefficient 1: {text!r}")
    return mono


def _parse_clause(body: str, line: int) -> list:
    """One comment body -> clauses (a ``bind`` may declare several)."""
    body = body.strip()
    sel = None
    m = _SEL_RE.search(body)
    if m:
        sel = (m.group("var"), int(m.group("val")))
        body = body[: m.start()].strip()
    m = _ASSUME_RE.match(body)
    if m:
        lo, hi = int(m.group("lo")), int(m.group("hi"))
        if lo > hi or hi - lo > 8:
            raise FpAnnotationError(f"bad assume range {lo}..{hi}")
        return [FpClause("assume", line, name=m.group("var"), lo=lo, hi=hi)]
    m = _FACT_RE.match(body)
    if m:
        return [FpClause("fact", line, mag_mono=_parse_mono(m.group("lhs")),
                         rhs=parse_poly(m.group("rhs")), sel=sel)]
    m = _CLAIM_RE.match(body)
    if m:
        return [FpClause("claim", line, name=m.group("name"),
                         err=parse_poly(m.group("rhs")), sel=sel)]
    m = _CALL_RE.match(body)
    if m:
        return [FpClause("call", line, name=m.group("name"),
                         atom=m.group("atom") or "",
                         err=parse_poly(m.group("err")), sel=sel)]
    head, _, rest = body.partition(" ")
    if head in ("guard", "envelope"):
        names = tuple(rest.split())
        if not names:
            raise FpAnnotationError(f"empty {head} clause")
        return [FpClause(head, line, names=names)]
    if head in ("in", "out", "bind"):
        out = []
        for part in re.split(r",(?![^(]*\))", rest):
            m = _DECL_RE.match(part.strip())
            if m is None:
                raise FpAnnotationError(
                    f"bad {head} declaration {part.strip()!r} "
                    "(want name ~ ATOM [err EXPR])")
            err = parse_poly(m.group("err")) if m.group("err") else None
            out.append(FpClause(head, line, name=m.group("name"),
                                atom=m.group("atom"), err=err, sel=sel))
        return out
    raise FpAnnotationError(f"unrecognized fp-bound clause {body!r}")


def _comment_lines(source: str):
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        return [(t.start[0], t.string) for t in tokens
                if t.type == tokenize.COMMENT]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return []


def parse_fp_annotations(
    source: str, tree: ast.Module
) -> tuple[dict, list]:
    """``# repro: fp-bound:`` clauses of one file.

    Returns ``(annotations, errors)``: annotations keyed by the ``def``
    line of the owning function (innermost whose span covers the
    comment, mirroring :func:`repro.analyze.shapes.parse_annotations`),
    and ``(line, message)`` pairs for malformed clauses (RPRFP999).
    """
    comments = _comment_lines(source)
    if not comments:
        return {}, []
    funcs = [n for n in ast.walk(tree)
             if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]

    def owner(line: int):
        best = None
        for fn in funcs:
            end = getattr(fn, "end_lineno", fn.lineno) or fn.lineno
            if fn.lineno <= line <= end:
                if best is None or fn.lineno > best.lineno:
                    best = fn
        return best

    out: dict[int, FpFnAnnotation] = {}
    errors: list[tuple[int, str]] = []
    for line, text in comments:
        m = _FP_COMMENT_RE.search(text)
        if not m:
            continue
        fn = owner(line)
        if fn is None:
            errors.append((line, "fp-bound comment outside any function"))
            continue
        try:
            clauses = _parse_clause(m.group("body"), line)
        except FpAnnotationError as exc:
            errors.append((line, str(exc)))
            continue
        ann = out.setdefault(fn.lineno, FpFnAnnotation(line=fn.lineno))
        ann.clauses.extend(clauses)
    return out, errors
