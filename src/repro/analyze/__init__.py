"""Static analyses: effects (``repro effects``), hot path (``repro
hotpath``), and floating-point filter soundness (``repro fpcheck``).

The effect pass statically proves the atomic-step discipline that the
dynamic race checker (:mod:`repro.runtime.racecheck`) can only sample:
every yield-to-yield segment of every step generator performs at most
one shared access, no raw shared write is reachable from any step
generator, mutex-guarded fields are never written with an empty
lockset, and no yield is dead.  The hot-path pass guards the SoA
kernel arc: an abstract interpretation over NumPy shapes/dtypes finds
per-element drivers, scalar predicates, allocation churn, dtype
degradation, shape inconsistencies and unaccounted sweeps on the
batch-kernel path.  The fpcheck pass guards the *filters themselves*:
an abstract interpretation over a relative-rounding-error domain
re-derives each committed forward-error envelope from the arithmetic
and rejects any constant that does not dominate its derivation.  See
ARCHITECTURE.md for the lattices and the honestly-stated unsoundness
holes; each pass has a dynamic soundness differential closing the
loop, and all three share one ratchet baseline implementation
(:mod:`repro.analyze.baseline`).
"""

from .baseline import assert_strict_decrease
from .callgraph import ClassInfo, FunctionInfo, Program, build_program
from .cfg import CFG, Node, build_cfg
from .checks import RULES, AnalysisResult, Finding, analyze_paths
from .effects import Effect, Site
from .fpcheck import (
    FP_RULES,
    ClaimCheck,
    FpcheckResult,
    analyze_fpcheck,
    render_fp_text,
)
from .fperror import (
    EPS,
    FpAnnotationError,
    FpFnAnnotation,
    FpVal,
    dominates,
    parse_fp_annotations,
    parse_poly,
    poly_eval,
    poly_format,
)
from .hotpath import (
    HOT_EXEMPT,
    HOT_RULES,
    HotpathResult,
    analyze_hotpaths,
    check_recorded_events,
    render_hot_text,
)
from .interproc import Analysis, Summary
from .report import (
    baseline_payload,
    compare_baseline,
    findings_from_json,
    findings_to_sarif,
    load_baseline,
    render_text,
    save_baseline,
    to_json,
    to_sarif,
)
from .shapes import (
    FnAnnotation,
    ShapeEnv,
    ShapeRecorder,
    ShapeVal,
    observe,
    parse_annotations,
    recording,
)

__all__ = [
    "Effect",
    "Site",
    "CFG",
    "Node",
    "build_cfg",
    "Program",
    "ClassInfo",
    "FunctionInfo",
    "build_program",
    "Analysis",
    "Summary",
    "AnalysisResult",
    "Finding",
    "RULES",
    "analyze_paths",
    "render_text",
    "to_json",
    "to_sarif",
    "findings_to_sarif",
    "findings_from_json",
    "baseline_payload",
    "compare_baseline",
    "load_baseline",
    "save_baseline",
    "assert_strict_decrease",
    "FP_RULES",
    "ClaimCheck",
    "FpcheckResult",
    "analyze_fpcheck",
    "render_fp_text",
    "EPS",
    "FpVal",
    "FpFnAnnotation",
    "FpAnnotationError",
    "parse_fp_annotations",
    "parse_poly",
    "poly_eval",
    "poly_format",
    "dominates",
    "HOT_RULES",
    "HOT_EXEMPT",
    "HotpathResult",
    "analyze_hotpaths",
    "render_hot_text",
    "check_recorded_events",
    "ShapeVal",
    "ShapeEnv",
    "FnAnnotation",
    "ShapeRecorder",
    "recording",
    "observe",
    "parse_annotations",
]
