"""Interprocedural effect analysis (``repro effects``).

Statically proves the atomic-step discipline that the dynamic race
checker (:mod:`repro.runtime.racecheck`) can only sample: every
yield-to-yield segment of every step generator performs at most one
shared access, no raw shared write is reachable from any step
generator, mutex-guarded fields are never written with an empty
lockset, and no yield is dead.  See ARCHITECTURE.md for the lattice,
the call-graph construction, and the honestly-stated unsoundness
holes; the soundness differential test closes the loop against the
dynamic checker.
"""

from .callgraph import ClassInfo, FunctionInfo, Program, build_program
from .cfg import CFG, Node, build_cfg
from .checks import RULES, AnalysisResult, Finding, analyze_paths
from .effects import Effect, Site
from .interproc import Analysis, Summary
from .report import (
    baseline_payload,
    compare_baseline,
    findings_from_json,
    load_baseline,
    render_text,
    save_baseline,
    to_json,
    to_sarif,
)

__all__ = [
    "Effect",
    "Site",
    "CFG",
    "Node",
    "build_cfg",
    "Program",
    "ClassInfo",
    "FunctionInfo",
    "build_program",
    "Analysis",
    "Summary",
    "AnalysisResult",
    "Finding",
    "RULES",
    "analyze_paths",
    "render_text",
    "to_json",
    "to_sarif",
    "findings_from_json",
    "baseline_payload",
    "compare_baseline",
    "load_baseline",
    "save_baseline",
]
