"""The RPREFF checks: what the effect analysis is *for*.

``RPREFF001`` step-atomicity
    In every step generator, each maximal yield-to-yield segment may
    perform at most one sanctioned shared access (atomic load/RMW,
    announced plain access) -- **including accesses performed by
    callees**, which is what the intra-procedural lint rule RPR003
    cannot see.  Verified by a saturating-counter dataflow over the
    function CFG; the counter charges callee summaries at call sites.

``RPREFF002`` raw-shared-write reachability
    No raw shared write (an effect the interleave scheduler cannot
    observe) may be reachable from any step generator through any chain
    of statically-known calls.  The finding carries the call chain.

``RPREFF003`` static lockset
    Eraser-style: for every mutex-owning class, a field written at
    least once with a lock held is *guarded*; any write to a guarded
    field with a provably empty lockset is flagged.  Reads are exempt
    (the quiescent-read idiom of ``WorkSpanTracker`` is legal), as is
    ``__init__`` (construction happens-before sharing).

``RPREFF004`` dead/duplicate yield
    A yield preemption point that covers no shared access on *any* path
    before the next yield widens the schedule space the theorems
    quantify over with no-op steps -- usually a leftover from a removed
    access or a duplicated announcement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..lint.core import SuppressionComment, iter_suppressions, suppressed_lines
from .callgraph import Program, build_program
from .cfg import Node, max_flow, reaches_before_yield
from .effects import MANY, Effect, Site
from .interproc import Analysis, FnAnalysis

__all__ = ["Finding", "RULES", "AnalysisResult", "analyze_paths"]

#: rule id -> (short name, summary) -- the SARIF rule table and
#: ``repro effects --list-rules`` both render this.
RULES: dict[str, tuple[str, str]] = {
    "RPREFF001": (
        "step-atomicity",
        "a yield-to-yield segment of a step generator performs more "
        "than one shared access (callees included)",
    ),
    "RPREFF002": (
        "raw-write-reachable",
        "a raw shared write is reachable from a step generator "
        "through statically-known calls",
    ),
    "RPREFF003": (
        "empty-lockset-write",
        "a write to a mutex-guarded field with a provably empty "
        "lockset",
    ),
    "RPREFF004": (
        "dead-yield",
        "a yield preemption point covering no shared access before "
        "the next yield",
    ),
    "RPREFF999": (
        "syntax-error",
        "a file could not be parsed",
    ),
}


@dataclass(frozen=True)
class Finding:
    rule_id: str
    path: str
    line: int
    col: int
    message: str
    func: str = ""

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def as_dict(self) -> dict:
        return {
            "rule_id": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "func": self.func,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Finding":
        return cls(
            rule_id=d["rule_id"], path=d["path"], line=int(d["line"]),
            col=int(d["col"]), message=d["message"], func=d.get("func", ""),
        )


def _segment_count_transfer(fa: FnAnalysis):
    def transfer(node: Node, n: int) -> int:
        c = 0 if node.kind == "yield" else n
        for it in fa.node_items.get(node.nid, ()):
            c = min(MANY, c + it.count)
        return c

    return transfer


def check_step_atomicity(analysis: Analysis) -> list[Finding]:
    out: list[Finding] = []
    for fa in analysis.step_generators():
        if fa.cfg is None:
            continue
        transfer = _segment_count_transfer(fa)
        # start=1 pre-charges the entry segment: code before the first
        # yield is not covered by any preemption point, so its very
        # first shared access already violates the discipline.
        state_in = max_flow(fa.cfg, transfer, start=1, top=MANY)
        for node in fa.cfg.nodes:
            if node.nid not in state_in:
                continue  # unreachable (dead code)
            c = 0 if node.kind == "yield" else state_in[node.nid]
            for it in fa.node_items.get(node.nid, ()):
                if it.count == 0:
                    continue
                before = c
                c = min(MANY, c + it.count)
                if c >= MANY and (before >= 1 or it.count >= MANY):
                    out.append(Finding(
                        rule_id="RPREFF001",
                        path=fa.info.path, line=it.line, col=it.col + 1,
                        func=fa.info.qualname,
                        message=(
                            f"{it.descr} is the second-or-later shared "
                            "access in one yield-to-yield segment of step "
                            f"generator `{fa.info.name}`; every shared "
                            "access needs its own preemption point"
                        ),
                    ))
    return out


def check_raw_reachability(analysis: Analysis) -> list[Finding]:
    out: list[Finding] = []
    reported: set[tuple[str, int, int]] = set()
    for fa in analysis.step_generators():
        # BFS over the call graph gives shortest provenance chains.
        origin = fa.info.qualname
        parents: dict[str, str] = {origin: ""}
        queue = [origin]
        while queue:
            qual = queue.pop(0)
            cur = analysis.fns.get(qual)
            if cur is None:
                continue
            for site in cur.raw_sites():
                key = (site.path, site.line, site.col)
                if key in reported:
                    continue
                reported.add(key)
                chain = []
                q = qual
                while q:
                    chain.append(q.rsplit(".", 1)[-1])
                    q = parents.get(q, "")
                chain.reverse()
                via = " -> ".join(chain)
                out.append(Finding(
                    rule_id="RPREFF002",
                    path=site.path, line=site.line, col=site.col + 1,
                    func=qual,
                    message=(
                        f"{site.descr}; reachable from step generator "
                        f"`{fa.info.name}` via {via}"
                    ),
                ))
            for e in cur.edges:
                if e.callee not in parents:
                    parents[e.callee] = qual
                    queue.append(e.callee)
    return out


def check_locksets(analysis: Analysis) -> list[Finding]:
    by_field: dict[tuple[str, str], list] = {}
    for fa in analysis.fns.values():
        for w in fa.writes:
            eff = analysis.effective_lockset(fa, w.held)
            by_field.setdefault((w.cls, w.attr), []).append((w, eff))
    out: list[Finding] = []
    for (cls_q, attr), recs in by_field.items():
        guards = set()
        for _, eff in recs:
            if eff is not None and eff:
                guards |= eff
        if not guards:
            continue  # never written under a lock: not a guarded field
        lock_names = ", ".join(sorted(g.rsplit(".", 1)[-1] for g in guards))
        cls_name = cls_q.rsplit(".", 1)[-1]
        for w, eff in recs:
            if eff is None or eff:
                continue  # unknown (vacuous) or locked
            out.append(Finding(
                rule_id="RPREFF003",
                path=w.path, line=w.line, col=w.col + 1,
                func=w.func,
                message=(
                    f"write to `{cls_name}.{attr}` with an empty lockset, "
                    f"but other writes hold `{lock_names}`; either take "
                    "the lock or document the quiescence argument"
                ),
            ))
    return out


def check_yields(analysis: Analysis) -> list[Finding]:
    out: list[Finding] = []
    for fa in analysis.step_generators():
        if fa.cfg is None:
            continue

        def effectful(node: Node) -> bool:
            return any(
                it.count > 0 or it.effect.is_shared
                for it in fa.node_items.get(node.nid, ())
            )

        for ynode in fa.cfg.yields():
            if not reaches_before_yield(fa.cfg, ynode, effectful):
                out.append(Finding(
                    rule_id="RPREFF004",
                    path=fa.info.path, line=ynode.line, col=ynode.col + 1,
                    func=fa.info.qualname,
                    message=(
                        "yield preemption point covers no shared access "
                        "before the next yield on any path (dead or "
                        "duplicate yield) in step generator "
                        f"`{fa.info.name}`"
                    ),
                ))
    return out


_CHECKS = (
    check_step_atomicity,
    check_raw_reachability,
    check_locksets,
    check_yields,
)


@dataclass
class AnalysisResult:
    program: Program
    analysis: Analysis
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)

    def sites(self) -> list[Site]:
        return self.analysis.shared_sites()

    def notes(self) -> list[str]:
        return self.analysis.notes()

    def suppressions(self) -> list[SuppressionComment]:
        """Noqa comments in the analysed files that (could) cover
        RPREFF rules: blanket comments plus explicit RPREFF codes.
        The ratchet baseline pins their count."""
        out = []
        for c in iter_suppressions(self.program.files):
            if c.codes is None or any(x.startswith("RPREFF") for x in c.codes):
                out.append(c)
        return out


def analyze_paths(
    paths: Sequence[str],
    sources: dict[str, str] | None = None,
) -> AnalysisResult:
    """Run the whole pipeline: parse, fixpoint, checks, suppression."""
    program = build_program(paths, sources=sources)
    analysis = Analysis.run(program)
    findings: list[Finding] = [
        Finding(
            rule_id="RPREFF999", path=v.path, line=v.line, col=v.col,
            message=v.message,
        )
        for v in program.errors
    ]
    for check in _CHECKS:
        findings.extend(check(analysis))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    source_by_path = {f.posix: f.source for f in program.files}
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    for f in findings:
        lines = suppressed_lines(source_by_path.get(f.path, ""))
        codes = lines.get(f.line, frozenset())
        if codes is None or f.rule_id in codes:
            suppressed.append(f)
        else:
            kept.append(f)
    return AnalysisResult(
        program=program, analysis=analysis,
        findings=kept, suppressed=suppressed,
    )
