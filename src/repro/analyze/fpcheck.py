"""The floating-point filter-soundness analyzer behind ``repro fpcheck``.

The SoA fast path trusts one invariant: a float sign is only believed
when its margin clears the committed forward-error envelope, so every
lie the float arithmetic could tell escalates to the exact ladder.
PR 3 proved by fuzzing that a hand-written envelope can be too small
(the ``det_with_error_bound`` eps-Hadamard bug).  This pass re-derives
each envelope *statically* from the arithmetic itself -- an abstract
interpretation of the straight-line NumPy/scalar code in the predicate
kernels over the error domain of :mod:`repro.analyze.fperror` -- and
checks that every committed constant dominates the derived bound.

Mechanics: functions carrying ``# repro: fp-bound:`` clauses are
interpreted per *instantiation* -- the ``assume d in 2..3`` clause pins
the symbolic dimension to each value in turn, so branch tests on the
pinned variable are decided exactly and dimension-specific claims
(``@d=3``) attach to the right walk.  Bounds flow interprocedurally
through ``out`` summaries on annotated callees (reusing PR 5's call
graph), and the hot region from PR 6's BFS scopes the comparison rule.

``RPRFP001`` envelope-under-derived
    A ``claim``/``out`` envelope constant does not dominate the bound
    derived from the arithmetic (the PR 3 bug class, caught statically).
``RPRFP002`` unfiltered-comparison
    A float comparison on tracked hull data in a statement that
    mentions no ``guard``-listed envelope name: the sign is trusted
    with no filter on the path.
``RPRFP003`` non-conservative-envelope
    Envelope arithmetic that is not round-toward-conservative: a
    subtraction / division / negation of float data inside a magnitude
    envelope (``envelope``-listed name).
``RPRFP004`` filter-knob-misuse
    A ``filter_scale``-style multiplicative knob below 1, or an
    envelope adjusted *after* it was already used in a comparison.
``RPRFP999`` annotation-error
    A file that cannot be parsed, or a malformed ``fp-bound:`` clause.

The static half is deliberately incomplete (first order in u, trusted
``bind``/``in`` magnitude atoms, primitive ``call`` models); the
dynamic differential in ``tests/analyze/test_fpcheck_soundness.py``
closes the loop by shadow-executing the same kernels in ``Fraction``
arithmetic and asserting committed >= derived >= observed, three-way,
over random and the full degenerate corpus.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Sequence

from ..lint.core import SuppressionComment, iter_suppressions, suppressed_lines
from . import fperror as fe
from . import shapes as sh
from .callgraph import FunctionInfo, Program, build_program
from .checks import Finding
from .hotpath import _bare_callee, _entry_reason, _hot_region

__all__ = [
    "FP_RULES",
    "ClaimCheck",
    "FpcheckResult",
    "analyze_fpcheck",
    "render_fp_text",
]

#: rule id -> (short name, summary); SARIF table + ``--list-rules``.
FP_RULES: dict[str, tuple[str, str]] = {
    "RPRFP001": (
        "envelope-under-derived",
        "a committed error-envelope constant does not dominate the "
        "statically derived first-order rounding bound",
    ),
    "RPRFP002": (
        "unfiltered-comparison",
        "a float comparison on tracked hull data with no envelope "
        "guard mentioned in the statement",
    ),
    "RPRFP003": (
        "non-conservative-envelope",
        "envelope arithmetic not computed round-toward-conservative "
        "(subtraction/division/negation of float data inside a "
        "magnitude envelope)",
    ),
    "RPRFP004": (
        "filter-knob-misuse",
        "a filter_scale-style knob below 1, or an envelope adjusted "
        "after it was used in a comparison",
    ),
    "RPRFP999": (
        "annotation-error",
        "a file could not be parsed or an fp-bound clause is malformed",
    ),
}

_CMP_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)

#: calls that preserve magnitude and error exactly (or are plain
#: relabelings); with several tracked arguments the result joins them.
_IDENTITY_CALLS = {
    "abs", "fabs", "absolute", "maximum", "minimum", "max", "min",
    "amax", "amin", "asarray", "asanyarray", "ascontiguousarray",
    "atleast_1d", "atleast_2d", "astype", "copy", "reshape", "ravel",
    "clip", "float64", "squeeze", "transpose",
}

#: calls whose result carries no float hull data (indices, bools,
#: shapes, decisions).
_NONFP_CALLS = {
    "int", "len", "bool", "range", "zip", "enumerate", "sign",
    "argmin", "argmax", "nonzero", "flatnonzero", "arange",
    "searchsorted", "repeat", "cumsum", "any", "all", "count_nonzero",
    "isfinite", "isnan", "isinf", "array_equal", "unique", "sort",
    "argsort", "lexsort", "bincount", "print",
}

#: stacking calls: result bounds join the (flattened) operands.
_JOIN_CALLS = {"stack", "concatenate", "hstack", "vstack",
               "column_stack", "dstack", "append"}


@dataclass
class ClaimCheck:
    """One checked ``claim``/``out`` envelope, with both sides of the
    domination pinned to concrete dimension values -- the record the
    dynamic soundness differential evaluates numerically."""

    qualname: str
    path: str
    name: str
    line: int
    kind: str                   # "claim" | "out"
    pin: tuple | None           # ("d", 3) instantiation, or None
    committed: fe.Poly          # pin-substituted committed envelope
    derived: fe.Poly | None     # pin-substituted derived error bound
    derived_mag: fe.Poly | None  # pin-substituted magnitude bound
    ok: bool = True


@dataclass
class FpcheckResult:
    program: Program
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    #: hot qualname -> provenance chain from its entry
    hot: dict[str, str] = field(default_factory=dict)
    #: entry qualname -> why it is an entry
    entries: dict[str, str] = field(default_factory=dict)
    #: qualname -> parsed fp-bound annotation
    annotations: dict[str, fe.FpFnAnnotation] = field(default_factory=dict)
    #: every claim/out domination check performed, pass or fail
    claims: list[ClaimCheck] = field(default_factory=list)

    def suppressions(self) -> list[SuppressionComment]:
        """Noqa comments that (could) cover RPRFP rules."""
        out = []
        for c in iter_suppressions(self.program.files):
            if c.codes is None or any(x.startswith("RPRFP") for x in c.codes):
                out.append(c)
        return out


class _Undecidable(Exception):
    pass


class _Interp:
    """One abstract walk of one function at one instantiation pin."""

    def __init__(
        self,
        info: FunctionInfo,
        ann: fe.FpFnAnnotation,
        pin: tuple | None,
        program: Program,
        annotations: dict[str, fe.FpFnAnnotation],
    ) -> None:
        self.info = info
        self.ann = ann
        self.pin = pin
        self.program = program
        self.annotations = annotations
        self.env: dict[str, object] = {}
        self.findings: list[Finding] = []
        self.claims: list[ClaimCheck] = []
        self.guards = ann.guard_names()
        self.envelopes = ann.envelope_names()
        self.returned = False
        self._quiet = 0
        self._guard_depth = 0
        self._cur_names: set[str] = set()
        self._compared_envs: set[str] = set()
        self._facts = [
            (lhs, self._pinsub(rhs)) for lhs, rhs in ann.facts(pin)
        ]
        # in / bind / claim clauses are applied in source order as the
        # walk passes their line: a clause on its own line applies
        # before the next statement, a trailing clause applies after
        # the statement it trails (so an ``in`` re-declaration on an
        # assignment line overrides the computed value).
        self.todo = sorted(
            (c for k in ("in", "bind", "claim")
             for c in ann.selected(k, pin)),
            key=lambda c: c.line,
        )
        self._call_models = {
            c.name: c for c in ann.selected("call", pin)
        }

    # -- small helpers ---------------------------------------------------

    def _pinsub(self, p: fe.Poly) -> fe.Poly:
        if self.pin is None:
            return p
        return fe.poly_sub_atom(p, self.pin[0], self.pin[1])

    def _finding(self, rule: str, node, message: str) -> None:
        if self._quiet:
            return
        self.findings.append(Finding(
            rule_id=rule,
            path=self.info.path,
            line=getattr(node, "lineno",
                         getattr(node, "line", self.ann.line)),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            func=self.info.qualname,
        ))

    def _pin_tag(self) -> str:
        return f" at {self.pin[0]}={self.pin[1]}" if self.pin else ""

    # -- clause application ----------------------------------------------

    def _apply_clauses(self, line: int, inclusive: bool) -> None:
        while self.todo and (
            self.todo[0].line <= line if inclusive
            else self.todo[0].line < line
        ):
            c = self.todo.pop(0)
            if c.kind == "in":
                self.env[c.name] = fe.FpVal(
                    "fp", fe.poly_atom(c.atom),
                    c.err if c.err is not None else {}, {},
                )
            elif c.kind == "bind":
                cur = self.env.get(c.name, fe.TOP)
                if not isinstance(cur, fe.FpVal):
                    cur = fe.TOP
                self.env[c.name] = fe.fp_bind(cur, fe.poly_atom(c.atom))
            elif c.kind == "claim":
                self._check_claim(c, kind="claim")

    def _drop_span(self, stmts: list) -> None:
        """A pruned branch takes its clauses with it."""
        for s in stmts:
            lo = s.lineno
            hi = getattr(s, "end_lineno", s.lineno) or s.lineno
            self.todo = [c for c in self.todo if not (lo <= c.line <= hi)]

    def _check_claim(self, clause: fe.FpClause, kind: str) -> None:
        committed = self._pinsub(clause.err)
        val = self.env.get(clause.name)
        if not isinstance(val, fe.FpVal) or not val.is_tracked:
            self.claims.append(ClaimCheck(
                self.info.qualname, self.info.path, clause.name,
                clause.line, kind, self.pin, committed, None, None,
                ok=False,
            ))
            self._finding(
                "RPRFP001", clause,
                f"committed envelope for {clause.name!r} cannot be "
                f"checked: no derived bound (value is "
                f"{val.kind if isinstance(val, fe.FpVal) else 'undefined'})"
                + self._pin_tag(),
            )
            return
        derived = self._pinsub(val.err)
        dmag = self._pinsub(val.mag)
        ok = fe.dominates(committed, derived, self._facts)
        self.claims.append(ClaimCheck(
            self.info.qualname, self.info.path, clause.name,
            clause.line, kind, self.pin, committed, derived, dmag, ok,
        ))
        if not ok:
            self._finding(
                "RPRFP001", clause,
                f"committed envelope for {clause.name!r} "
                f"(({fe.poly_format(committed)})*eps) does not dominate "
                f"the derived bound (({fe.poly_format(derived)})*eps)"
                + self._pin_tag(),
            )

    # -- constant folding over the pin -----------------------------------

    def _const(self, node: ast.AST):
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name):
            if self.pin is not None and node.id == self.pin[0]:
                return self.pin[1]
            raise _Undecidable
        if isinstance(node, ast.UnaryOp):
            v = self._const(node.operand)
            if isinstance(node.op, ast.Not):
                return not v
            if isinstance(node.op, ast.USub):
                return -v
            raise _Undecidable
        if isinstance(node, ast.BoolOp):
            vals = [self._const(v) for v in node.values]
            return all(vals) if isinstance(node.op, ast.And) else any(vals)
        if isinstance(node, ast.Compare):
            left = self._const(node.left)
            for op, comp in zip(node.ops, node.comparators):
                right = self._const(comp)
                ok = (
                    left == right if isinstance(op, ast.Eq)
                    else left != right if isinstance(op, ast.NotEq)
                    else left < right if isinstance(op, ast.Lt)
                    else left <= right if isinstance(op, ast.LtE)
                    else left > right if isinstance(op, ast.Gt)
                    else left >= right if isinstance(op, ast.GtE)
                    else None
                )
                if ok is None:
                    raise _Undecidable
                if not ok:
                    return False
                left = right
            return True
        if isinstance(node, ast.BinOp):
            a, b = self._const(node.left), self._const(node.right)
            if isinstance(node.op, ast.Add):
                return a + b
            if isinstance(node.op, ast.Sub):
                return a - b
            if isinstance(node.op, ast.Mult):
                return a * b
            if isinstance(node.op, ast.FloorDiv):
                return a // b
            if isinstance(node.op, ast.Mod):
                return a % b
            if isinstance(node.op, ast.Pow):
                return a ** b
        raise _Undecidable

    def _decide(self, test: ast.AST):
        try:
            return bool(self._const(test))
        except Exception:
            return None

    # -- expression evaluation -------------------------------------------

    def _eval(self, node: ast.AST) -> object:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(
                    node.value, (int, float)):
                return fe.NONFP
            return fe.fp_exactval(fe.poly_const(abs(node.value)))
        if isinstance(node, ast.Name):
            if self.pin is not None and node.id == self.pin[0]:
                return fe.NONFP
            return self.env.get(node.id, fe.TOP)
        if isinstance(node, ast.Attribute):
            key = ast.unparse(node)
            if key in self.env:
                return self.env[key]
            if node.attr in ("shape", "size", "ndim", "dtype"):
                return fe.NONFP
            if node.attr == "T":
                return self._eval(node.value)
            return fe.TOP
        if isinstance(node, ast.Subscript):
            self._eval(node.slice)
            return self._eval(node.value)
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, (ast.Tuple, ast.List)):
            return tuple(self._eval(e) for e in node.elts)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node)
        if isinstance(node, ast.UnaryOp):
            v = self._eval(node.operand)
            if isinstance(node.op, ast.Not):
                return fe.NONFP
            return v if isinstance(v, fe.FpVal) else fe.TOP
        if isinstance(node, ast.BoolOp):
            for v in node.values:
                self._eval(v)
            return fe.NONFP
        if isinstance(node, ast.Compare):
            return self._eval_compare(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.IfExp):
            t = self._decide(node.test)
            if t is True:
                return self._eval(node.body)
            if t is False:
                return self._eval(node.orelse)
            self._eval(node.test)
            a, b = self._eval(node.body), self._eval(node.orelse)
            if isinstance(a, fe.FpVal) and isinstance(b, fe.FpVal):
                return fe.fp_join(a, b)
            return fe.TOP
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            return fe.TOP
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self._eval(part)
            return fe.NONFP
        if isinstance(node, ast.JoinedStr):
            return fe.NONFP
        return fe.TOP

    def _eval_binop(self, node: ast.BinOp) -> object:
        # pin-foldable arithmetic (`n - 1`, `2.0 ** (n - 1)`) is index
        # bookkeeping, not float hull data
        try:
            self._const(node)
            return fe.NONFP
        except Exception:
            pass
        a = self._eval(node.left)
        b = self._eval(node.right)
        if not isinstance(a, fe.FpVal):
            a = fe.TOP
        if not isinstance(b, fe.FpVal):
            b = fe.TOP
        if isinstance(node.op, (ast.Add, ast.Sub)):
            return fe.fp_add(a, b)
        if isinstance(node.op, ast.Mult):
            return fe.fp_mul(a, b)
        if isinstance(node.op, ast.MatMult):
            return fe.fp_dot(a, b, self._dim_poly())
        # Div / FloorDiv / Mod / Pow / shifts: exact only when both
        # operands carry no float data (index arithmetic like n - 1).
        if a.kind == "other" and b.kind == "other":
            return fe.NONFP
        return fe.TOP

    def _dim_poly(self) -> fe.Poly:
        """Reduction length for dot/einsum/sum: the ambient dimension.
        Pinned when an ``assume`` clause fixes it, symbolic otherwise
        (an honest modeling choice -- every kernel here reduces over
        the coordinate axis)."""
        if self.pin is not None:
            return fe.poly_const(self.pin[1])
        return fe.poly_atom("d")

    def _eval_compare(self, node: ast.Compare) -> object:
        vals = [self._eval(node.left)]
        vals.extend(self._eval(c) for c in node.comparators)
        ordered = any(isinstance(op, _CMP_OPS) for op in node.ops)
        tracked = any(
            isinstance(v, fe.FpVal) and v.is_tracked and v.err
            for v in vals
        )
        guarded = bool(self._cur_names & self.guards) or self._guard_depth > 0
        if ordered and tracked and not guarded:
            self._finding(
                "RPRFP002", node,
                "unfiltered float comparison on tracked hull data: "
                f"`{ast.unparse(node)}` trusts a float sign with no "
                "envelope guard mentioned in the statement",
            )
        return fe.NONFP

    # -- calls -----------------------------------------------------------

    def _eval_call(self, node: ast.Call) -> object:
        bare = _bare_callee(node)
        args = [self._eval(a) for a in node.args]
        for kw in node.keywords:
            if kw.arg != "out":
                self._eval(kw.value)

        receiver = None
        func = node.func
        if isinstance(func, ast.Attribute):
            root = func.value
            while isinstance(root, ast.Attribute):
                root = root.value
            np_root = (isinstance(root, ast.Name)
                       and root.id in ("np", "numpy", "math"))
            if not np_root:
                receiver = self._eval(func.value)

        result = self._dispatch_call(node, bare, args, receiver)

        for kw in node.keywords:
            if kw.arg == "out":
                self._assign_key(ast.unparse(kw.value), result)
        return result

    def _dispatch_call(self, node, bare, args, receiver) -> object:
        if bare == "filter_scale":
            if (node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, (int, float))
                    and node.args[0].value < 1):
                self._finding(
                    "RPRFP004", node,
                    f"filter_scale({node.args[0].value!r}) shrinks the "
                    "committed envelope below its derived bound "
                    "(multiplicative knob < 1)",
                )
            return fe.NONFP

        model = self._call_models.get(bare)
        if model is not None:
            if not model.atom:
                return fe.TOP
            return fe.FpVal(
                "fp", fe.poly_atom(model.atom), model.err or {}, {},
            )

        summary = self._user_summary(bare)
        if summary is not None:
            return summary

        fpargs = [v for v in args if isinstance(v, fe.FpVal)]
        if receiver is not None and isinstance(receiver, fe.FpVal):
            fpargs.insert(0, receiver)
        flat: list = []
        for v in fpargs:
            flat.extend(v) if isinstance(v, tuple) else flat.append(v)
        fpargs = [v for v in flat if isinstance(v, fe.FpVal)]

        if bare in _NONFP_CALLS:
            return fe.NONFP
        if bare in _IDENTITY_CALLS:
            tracked = [v for v in fpargs if v.kind != "other"]
            if len(tracked) == 1:
                return tracked[0]
            return fe.fp_join(*fpargs) if fpargs else fe.NONFP
        if bare in _JOIN_CALLS:
            return fe.fp_join(*fpargs) if fpargs else fe.TOP
        if bare == "sqrt":
            return fe.fp_sqrt(fpargs[0]) if fpargs else fe.TOP
        if bare == "where":
            if len(args) >= 3:
                a, b = args[1], args[2]
                if isinstance(a, fe.FpVal) and isinstance(b, fe.FpVal):
                    return fe.fp_join(a, b)
            return fe.TOP
        if bare == "einsum":
            if len(args) >= 3:
                a, b = args[1], args[2]
                if isinstance(a, fe.FpVal) and isinstance(b, fe.FpVal):
                    return fe.fp_dot(a, b, self._dim_poly())
            return fe.TOP
        if bare in ("dot", "inner", "vdot", "matmul"):
            ops = ([receiver] if isinstance(receiver, fe.FpVal) else []) \
                + [v for v in args if isinstance(v, fe.FpVal)]
            if len(ops) >= 2:
                return fe.fp_dot(ops[0], ops[1], self._dim_poly())
            return fe.TOP
        if bare == "cross":
            if len(fpargs) >= 2:
                return fe.fp_cross(fpargs[0], fpargs[1])
            return fe.TOP
        if bare in ("sum", "nansum"):
            src = receiver if isinstance(receiver, fe.FpVal) else (
                fpargs[0] if fpargs else fe.TOP)
            return fe.fp_sum(src, self._dim_poly())
        if bare == "prod":
            return fe.TOP
        if bare in ("zeros", "empty", "zeros_like", "empty_like"):
            return fe.FpVal("fp", {}, {}, {})
        if bare in ("ones", "ones_like"):
            return fe.fp_exactval(fe.poly_const(1.0))
        if bare == "float":
            return fpargs[0] if fpargs else fe.TOP
        return fe.TOP

    def _user_summary(self, bare: str) -> object:
        """``out`` summary of an annotated callee, instantiated at the
        caller's pin when the assume variables line up."""
        for info in self.program.functions_named(bare):
            ann = self.annotations.get(info.qualname)
            if ann is None:
                continue
            assume = ann.assume()
            callee_pin = None
            if assume is not None:
                if (self.pin is None
                        or self.pin[0] != assume.name
                        or not (assume.lo <= self.pin[1] <= assume.hi)):
                    return fe.TOP
                callee_pin = self.pin
            chosen: dict[str, fe.FpClause] = {}
            for c in ann.selected("out", callee_pin):
                prev = chosen.get(c.name)
                if prev is not None and prev.sel is not None \
                        and c.sel is None:
                    continue
                chosen[c.name] = c
            if not chosen:
                return fe.TOP
            vals = tuple(
                fe.FpVal("fp", fe.poly_atom(c.atom),
                         c.err if c.err is not None else {}, {})
                for c in chosen.values()
            )
            return vals[0] if len(vals) == 1 else vals
        return None

    # -- statements ------------------------------------------------------

    def run(self) -> None:
        node = self.info.node
        if isinstance(node, ast.Lambda):
            return
        self._exec_block(node.body)
        # remaining clauses (e.g. a claim after the last statement)
        self._apply_clauses(10 ** 9, inclusive=True)
        for c in self.ann.selected("out", self.pin):
            if c.err is not None:
                self._check_claim(c, kind="out")

    def _exec_block(self, stmts: list) -> None:
        for stmt in stmts:
            if self.returned:
                break
            self._apply_clauses(stmt.lineno, inclusive=False)
            self._exec_stmt(stmt)
            end = getattr(stmt, "end_lineno", stmt.lineno) or stmt.lineno
            self._apply_clauses(end, inclusive=True)

    def _stmt_names(self, stmt: ast.AST) -> set:
        names = set()
        for n in ast.walk(stmt):
            if isinstance(n, ast.Name):
                names.add(n.id)
            elif isinstance(n, ast.Attribute):
                try:
                    names.add(ast.unparse(n))
                except Exception:
                    pass
        return names

    def _exec_stmt(self, stmt: ast.AST) -> None:
        self._cur_names = self._stmt_names(stmt)

        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, value, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, self._eval(stmt.value),
                             stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            load = ast.Name(id=stmt.target.id, ctx=ast.Load()) \
                if isinstance(stmt.target, ast.Name) else stmt.target
            synthetic = ast.BinOp(left=load, op=stmt.op, right=stmt.value)
            ast.copy_location(synthetic, stmt)
            ast.fix_missing_locations(synthetic)
            self._assign(stmt.target, self._eval(synthetic), synthetic)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._eval(stmt.value)
            self.returned = True
        elif isinstance(stmt, ast.Raise):
            self.returned = True
        elif isinstance(stmt, ast.If):
            self._exec_if(stmt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._eval(stmt.iter)
            self._assign(stmt.target, fe.NONFP, None)
            self._exec_block(stmt.body)
            self.returned = False  # zero-iteration path exists
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            t = self._decide(stmt.test)
            if t is None:
                self._eval(stmt.test)
            if t is not False:
                self._exec_block(stmt.body)
                self.returned = False
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._eval(item.context_expr)
            self._exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body)
            self.returned = False  # handlers assume the body may fail
            for handler in stmt.handlers:
                self._exec_block(handler.body)
                self.returned = False
            self._exec_block(stmt.orelse)
            self._exec_block(stmt.finalbody)
        elif isinstance(stmt, (ast.Assert, ast.Delete, ast.Pass,
                               ast.Break, ast.Continue, ast.Global,
                               ast.Nonlocal, ast.Import, ast.ImportFrom)):
            if isinstance(stmt, ast.Assert):
                self._eval(stmt.test)
        # nested defs/classes are separate analysis subjects

        # marked *after* execution: "adjusted after a comparison" means
        # a strictly earlier statement already compared against it.
        # Compound statements mark only their header -- their bodies
        # were marked statement-by-statement (or pruned) above.
        if isinstance(stmt, (ast.If, ast.While)):
            scan = stmt.test
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            scan = stmt.iter
        elif isinstance(stmt, (ast.With, ast.AsyncWith, ast.Try)):
            return
        else:
            scan = stmt
        if any(isinstance(n, ast.Compare) for n in ast.walk(scan)):
            self._compared_envs |= self._stmt_names(scan) & self.envelopes

    def _exec_if(self, stmt: ast.If) -> None:
        t = self._decide(stmt.test)
        if t is True:
            self._drop_span(stmt.orelse)
            self._exec_block(stmt.body)
            return
        if t is False:
            self._drop_span(stmt.body)
            self._exec_block(stmt.orelse)
            return
        self._eval(stmt.test)
        # a branch whose test mentions a guard name is an envelope
        # filter: comparisons dominated by it are filtered decisions
        guarded = bool(self._stmt_names(stmt.test) & self.guards)
        if guarded:
            self._guard_depth += 1
        saved = dict(self.env)
        self._exec_block(stmt.body)
        env_body, ret_body = self.env, self.returned
        self.env, self.returned = dict(saved), False
        self._exec_block(stmt.orelse)
        env_else, ret_else = self.env, self.returned
        if guarded:
            self._guard_depth -= 1
        if ret_body and ret_else:
            self.returned = True
        elif ret_body:
            self.env, self.returned = env_else, False
        elif ret_else:
            self.env, self.returned = env_body, False
        else:
            self.env = self._join_envs(env_body, env_else)
            self.returned = False

    def _join_envs(self, a: dict, b: dict) -> dict:
        out: dict[str, object] = {}
        for key in set(a) | set(b):
            va, vb = a.get(key), b.get(key)
            if va is None:
                out[key] = vb
            elif vb is None or va is vb:
                out[key] = va
            elif isinstance(va, fe.FpVal) and isinstance(vb, fe.FpVal):
                out[key] = fe.fp_join(va, vb)
            else:
                out[key] = fe.TOP
        return out

    # -- assignment + envelope discipline --------------------------------

    def _assign_key(self, key: str, value: object) -> None:
        self.env[key] = value

    def _assign(self, target: ast.AST, value: object,
                rhs: ast.AST | None) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
            if rhs is not None:
                self._envelope_checks(target.id, rhs)
        elif isinstance(target, ast.Attribute):
            self.env[ast.unparse(target)] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value, tuple) and len(value) == len(target.elts):
                for t, v in zip(target.elts, value):
                    self._assign(t, v, None)
            else:
                for t in target.elts:
                    self._assign(t, value if isinstance(value, fe.FpVal)
                                 else fe.TOP, None)
        elif isinstance(target, ast.Subscript):
            self._eval(target.slice)
            base = target.value
            if isinstance(base, (ast.Name, ast.Attribute)):
                key = base.id if isinstance(base, ast.Name) \
                    else ast.unparse(base)
                cur = self.env.get(key)
                if isinstance(cur, fe.FpVal) and isinstance(value, fe.FpVal):
                    self.env[key] = fe.fp_join(cur, value)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, value, None)

    def _envelope_checks(self, name: str, rhs: ast.AST) -> None:
        if name not in self.envelopes:
            return
        if name in self._compared_envs:
            self._finding(
                "RPRFP004", rhs,
                f"envelope {name!r} adjusted after it was already used "
                "in a comparison (the filter must be fixed before the "
                "sign is trusted)",
            )
        for n in ast.walk(rhs):
            if isinstance(n, ast.BinOp) and isinstance(n.op, ast.Mult):
                for side in (n.left, n.right):
                    if (isinstance(side, ast.Constant)
                            and isinstance(side.value, (int, float))
                            and not isinstance(side.value, bool)
                            and 0 < side.value < 1):
                        self._finding(
                            "RPRFP004", n,
                            f"envelope {name!r} scaled by constant "
                            f"{side.value!r} < 1 (shrinks the filter "
                            "below its derivation)",
                        )
            operands: list[ast.AST] = []
            if isinstance(n, ast.BinOp) and isinstance(
                    n.op, (ast.Sub, ast.Div)):
                operands = [n.left, n.right]
            elif isinstance(n, ast.UnaryOp) and isinstance(n.op, ast.USub):
                operands = [n.operand]
            if not operands:
                continue
            try:
                self._const(n)
                continue  # pin-foldable index arithmetic, not data
            except Exception:
                pass
            self._quiet += 1
            try:
                all_nonfp = all(
                    isinstance(v, fe.FpVal) and v.kind == "other"
                    for v in (self._eval(o) for o in operands)
                )
            finally:
                self._quiet -= 1
            if not all_nonfp:
                op = ("subtraction" if isinstance(n, ast.BinOp)
                      and isinstance(n.op, ast.Sub)
                      else "division" if isinstance(n, ast.BinOp)
                      else "negation")
                self._finding(
                    "RPRFP003", n,
                    f"envelope {name!r} computed with {op} of float "
                    "data: magnitude envelopes must be built from "
                    "round-toward-conservative operations "
                    "(abs/max/+/*) only",
                )


# -- pipeline ------------------------------------------------------------


def analyze_fpcheck(
    paths: Sequence[str],
    sources: dict[str, str] | None = None,
) -> FpcheckResult:
    """Parse, attach fp-bound annotations, interpret each annotated
    function per instantiation, apply noqa."""
    program = build_program(paths, sources=sources)

    findings: list[Finding] = [
        Finding(rule_id="RPRFP999", path=v.path, line=v.line, col=v.col,
                message=v.message)
        for v in program.errors
    ]

    fp_by_key: dict[tuple[str, int], fe.FpFnAnnotation] = {}
    sh_keys: set[tuple[str, int]] = set()
    for f in program.files:
        anns, errors = fe.parse_fp_annotations(f.source, f.tree)
        for lineno, ann in anns.items():
            fp_by_key[(f.posix, lineno)] = ann
        for line, message in errors:
            findings.append(Finding(
                rule_id="RPRFP999", path=f.posix, line=line, col=1,
                message=f"bad fp-bound annotation: {message}",
            ))
        for lineno in sh.parse_annotations(f.source, f.tree):
            sh_keys.add((f.posix, lineno))

    annotations: dict[str, fe.FpFnAnnotation] = {}
    by_qual: dict[str, FunctionInfo] = {}
    for info in program.all_functions():
        by_qual[info.qualname] = info
        if isinstance(info.node, ast.Lambda):
            continue
        ann = fp_by_key.get((info.path, info.node.lineno))
        if ann is not None:
            ann.qualname = info.qualname
            annotations[info.qualname] = ann

    entries: dict[str, str] = {}
    for info in program.all_functions():
        if info.qualname in annotations:
            entries[info.qualname] = "fp-bound annotated kernel boundary"
            continue
        reason = _entry_reason(
            info, (info.path, getattr(info.node, "lineno", 0)) in sh_keys)
        if reason is not None:
            entries[info.qualname] = reason
    hot = _hot_region(program, entries)

    claims: list[ClaimCheck] = []
    for qual in sorted(annotations):
        info = by_qual.get(qual)
        if info is None:
            continue
        ann = annotations[qual]
        assume = ann.assume()
        pins: list[tuple | None]
        if assume is not None:
            pins = [(assume.name, v)
                    for v in range(assume.lo, assume.hi + 1)]
        else:
            pins = [None]
        seen: set[tuple] = set()
        for pin in pins:
            interp = _Interp(info, ann, pin, program, annotations)
            try:
                interp.run()
            except RecursionError:
                findings.append(Finding(
                    rule_id="RPRFP999", path=info.path,
                    line=getattr(info.node, "lineno", 1), col=1,
                    message=f"analysis of {qual} exceeded recursion "
                    "limits", func=qual,
                ))
                continue
            claims.extend(interp.claims)
            for f in interp.findings:
                key = (f.rule_id, f.path, f.line, f.col, f.message)
                if key not in seen:
                    seen.add(key)
                    findings.append(f)

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))

    source_by_path = {f.posix: f.source for f in program.files}
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    for f in findings:
        lines = suppressed_lines(source_by_path.get(f.path, ""))
        codes = lines.get(f.line, frozenset())
        if codes is None or f.rule_id in codes:
            suppressed.append(f)
        else:
            kept.append(f)
    return FpcheckResult(
        program=program, findings=kept, suppressed=suppressed,
        hot=hot, entries=entries, annotations=annotations, claims=claims,
    )


def render_fp_text(result: FpcheckResult, verbose: bool = False) -> str:
    lines = [f.format() for f in result.findings]
    failures = sum(1 for c in result.claims if not c.ok)
    summary = (
        f"repro fpcheck: {len(result.findings)} finding(s), "
        f"{len(result.suppressed)} suppressed; "
        f"{len(result.entries)} entry point(s), "
        f"{len(result.hot)} hot function(s), "
        f"{len(result.annotations)} annotated boundary(ies), "
        f"{len(result.claims)} envelope claim(s) checked, "
        f"{failures} claim failure(s)"
    )
    if verbose:
        lines.append("envelope claims:")
        for c in result.claims:
            pin = f" @{c.pin[0]}={c.pin[1]}" if c.pin else ""
            status = "ok" if c.ok else "FAIL"
            derived = (fe.poly_format(c.derived)
                       if c.derived is not None else "<unavailable>")
            lines.append(
                f"  [{status}] {c.qualname}: {c.name}{pin}: committed "
                f"{fe.poly_format(c.committed)} vs derived {derived}"
            )
    lines.append(summary)
    return "\n".join(lines)
