"""The hot-path discipline analyzer behind ``repro hotpath``.

``BENCH_kernels.json`` records the problem this pass exists to guard:
the batched predicate kernels win 20-36x on raw sweeps, yet end-to-end
hulls at n=2000 run at 0.76-0.80x -- the per-facet Python driver in
``hull/`` swallows the vectorized win.  The coming SoA conflict-list
refactor (ROADMAP Open item 1) removes those driver loops; this
analyzer *finds* them today (the committed ``hotpath-baseline.json``
is exactly that worklist) and, through the baseline ratchet, forbids
their reintroduction tomorrow.

Mechanics: functions on the batch-kernel path ("hot" functions) are
discovered by a BFS over the bare-name call graph from the kernel
entry points (anything with a ``kernel=`` parameter, anything that
constructs :class:`~repro.geometry.kernels.BatchKernel` or passes
``kernel="batch"``, and every shape-annotated or ``# repro: hot-entry``
function), with RPREFF002-style provenance chains.  Inside each hot
function the rules run over the loop-depth-stamped CFG
(:mod:`repro.analyze.cfg`) and the NumPy shape abstraction
(:mod:`repro.analyze.shapes`):

``RPRHOT001`` per-element loop
    A Python ``for`` over facet/point/conflict data (inferred array,
    or matching the hot-data lexicon) on the batch-reachable path.
``RPRHOT002`` scalar predicate in a loop
    ``orient`` / ``side`` / ``visible_mask`` / per-facet ``Hyperplane``
    construction at loop depth >= 1: exactly the amortization failure
    parlaylib's staged predicates avoid.
``RPRHOT003`` allocation churn
    ``np.concatenate``/``np.asarray``/... or hot-list ``.append`` at
    loop depth >= 1 (quadratic reallocation).
``RPRHOT004`` dtype degradation
    An ``object``-dtype array (e.g. a float64 -> Fraction crossing)
    flowing through a hot function.
``RPRHOT005`` shape inconsistency
    einsum/matmul/broadcast operands that *definitely* cannot agree
    under the inferred symbolic dims.
``RPRHOT006`` unaccounted batched sweep
    A ``visible_blocks``/``orient_batch`` call in a function with no
    work-span accounting marker, which would silently falsify E2/E13.

The scalar exact-arithmetic ladder (``geometry/predicates.py``,
``perturb.py``, ``linalg.py``, ``hyperplane.py``) is per-element *by
design* -- it is the correctness fallback the batch kernels filter
down to -- so those files are exempt from findings (they still
propagate hotness).  Runtime primitives share the effects allowlist.

Honest holes, mirrored in ARCHITECTURE.md: hotness uses bare-name
resolution (over-approximate), the shape pass is a single forward
sweep (flow-insensitive at joins), and the hot-data lexicon is a
heuristic.  The dynamic differential in
``tests/analyze/test_hotpath_soundness.py`` bounds the shape
abstraction against recorded kernel traffic.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Sequence

from ..lint.core import SuppressionComment, iter_suppressions, suppressed_lines
from . import shapes as sh
from .callgraph import FunctionInfo, Program, build_program
from .cfg import build_cfg
from .checks import Finding
from .effects import EFFECT_ALLOWLIST

__all__ = [
    "HOT_RULES",
    "HOT_EXEMPT",
    "HotpathResult",
    "analyze_hotpaths",
    "render_hot_text",
    "check_recorded_events",
]

#: rule id -> (short name, summary); SARIF table + ``--list-rules``.
HOT_RULES: dict[str, tuple[str, str]] = {
    "RPRHOT001": (
        "per-element-loop",
        "a per-element Python for loop over facet/point/conflict data "
        "on the batch-kernel path",
    ),
    "RPRHOT002": (
        "scalar-predicate-in-loop",
        "a scalar geometric predicate or per-facet Hyperplane "
        "construction inside a loop on the batch path",
    ),
    "RPRHOT003": (
        "alloc-in-hot-loop",
        "array allocation or list growth inside a hot loop "
        "(quadratic churn)",
    ),
    "RPRHOT004": (
        "dtype-degradation",
        "an object-dtype array (float64 -> Fraction crossing) leaking "
        "into a kernel sweep",
    ),
    "RPRHOT005": (
        "shape-mismatch",
        "einsum/matmul/broadcast operand shapes inconsistent under "
        "the inferred symbolic dims",
    ),
    "RPRHOT006": (
        "unaccounted-sweep",
        "a batched sweep with no matching work-span accounting "
        "(add_batched_sweep/count_sweep)",
    ),
    "RPRHOT999": (
        "syntax-error",
        "a file could not be parsed",
    ),
}

#: files whose *findings* are waived: the scalar exact ladder is
#: per-element by design (it is what the batch kernels fall back to),
#: and runtime primitives share the effects allowlist.  Hotness still
#: propagates through them.
#:
#: The four object-graph hull drivers are exempt as *oracles*: since
#: the conflict-list SoA engine (:mod:`repro.hull.soa`) became the
#: performance path, their per-facet/per-ridge loops are the executable
#: specification the differential suites check the SoA engine against
#: -- batching them away would destroy the very scalar-equivalence
#: the tests pin.  ``hull/soa.py`` itself is NOT exempt: the vectorized
#: engine must stay finding-free on its own merits.
HOT_EXEMPT: tuple[str, ...] = EFFECT_ALLOWLIST + (
    "geometry/predicates.py",
    "geometry/perturb.py",
    "geometry/linalg.py",
    "geometry/hyperplane.py",
    "hull/sequential.py",
    "hull/parallel.py",
    "hull/point_parallel.py",
    "hull/online.py",
)

#: the hot-data lexicon: names that, appearing in a loop iterable,
#: mark it as per-element iteration over geometry/conflict data.
HOT_NAME_RE = re.compile(
    r"\b(frontier|task|facet|conflict|cand|plane|spec|point|ridge"
    r"|simplex|simplices|queries|block|pend)\w*"
)

#: bare names whose call is a scalar predicate / per-facet plane setup
SCALAR_PREDICATES = frozenset({
    "orient", "orient_exact", "orient_exact_combo", "orient_sos",
    "side", "is_visible", "visible_mask", "margins", "through",
    "_plane_for", "_side_exact", "Hyperplane", "in_circle",
})

#: np.* calls that allocate a fresh array
ALLOC_NP = frozenset({
    "concatenate", "append", "array", "asarray", "asanyarray", "zeros",
    "empty", "ones", "full", "stack", "vstack", "hstack", "arange",
    "ascontiguousarray", "copy",
})

#: list-growth methods (flagged only on hot-lexicon receivers)
LIST_GROW = frozenset({"append", "extend", "insert"})

#: batched sweep entry points that must be work-span accounted
BATCH_SWEEPS = frozenset({"visible_blocks", "orient_batch"})

#: presence of any of these names/attrs in a function counts as
#: accounting for its sweeps
ACCOUNTING_MARKERS = frozenset({
    "add_batched_sweep", "add_task", "count_sweep", "visibility_tests",
})


def _bare_callee(call: ast.Call) -> str:
    f = call.func
    if isinstance(f, ast.Name):
        return f.id
    if isinstance(f, ast.Attribute):
        return f.attr
    return ""


def _unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return "<expr>"


@dataclass
class _FnScan:
    """Everything one syntactic pass collects from a hot function."""

    #: (call node, loop depth incl. comprehension nesting)
    calls: list[tuple[ast.Call, int]] = field(default_factory=list)
    #: top-level value expressions of statements (for the dtype rule)
    values: list[ast.expr] = field(default_factory=list)
    #: every Name id and Attribute attr in the body (marker lookup)
    names: set[str] = field(default_factory=set)


def _scan_fn(fnnode) -> _FnScan:
    """One recursive pass: calls with their loop depth (``for``/
    ``while`` bodies and comprehension generators each add one),
    statement value expressions, and the name universe.  Nested defs
    and lambdas are skipped -- they are hot functions of their own."""
    out = _FnScan()

    def visit(n: ast.AST, depth: int) -> None:
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef,
                          ast.ClassDef, ast.Lambda)):
            return
        if isinstance(n, ast.Name):
            out.names.add(n.id)
        elif isinstance(n, ast.Attribute):
            out.names.add(n.attr)
        if isinstance(n, (ast.For, ast.AsyncFor)):
            visit(n.iter, depth)
            visit(n.target, depth)
            for s in n.body:
                visit(s, depth + 1)
            for s in n.orelse:
                visit(s, depth)
            return
        if isinstance(n, ast.While):
            visit(n.test, depth + 1)
            for s in n.body:
                visit(s, depth + 1)
            for s in n.orelse:
                visit(s, depth)
            return
        if isinstance(n, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                          ast.DictComp)):
            inner = depth
            for gen in n.generators:
                visit(gen.iter, inner)
                visit(gen.target, inner + 1)
                inner += 1
                for cond in gen.ifs:
                    visit(cond, inner)
            if isinstance(n, ast.DictComp):
                visit(n.key, inner)
                visit(n.value, inner)
            else:
                visit(n.elt, inner)
            return
        if isinstance(n, (ast.Assign, ast.AnnAssign, ast.Return, ast.Expr)):
            if getattr(n, "value", None) is not None:
                out.values.append(n.value)
        if isinstance(n, ast.Call):
            out.calls.append((n, depth))
        for child in ast.iter_child_nodes(n):
            visit(child, depth)

    body = getattr(fnnode, "body", None)
    if isinstance(body, list):
        for stmt in body:
            visit(stmt, 0)
    elif body is not None:  # a lambda body is a single expression
        visit(body, 0)
    return out


# -- hot-region discovery ------------------------------------------------


def _entry_reason(info: FunctionInfo, annotated: bool) -> str | None:
    if annotated:
        return "shape-annotated kernel boundary"
    if "kernel" in info.param_names:
        return "has a kernel= parameter"
    node = info.node
    if isinstance(node, ast.Lambda):
        return None
    for n in ast.walk(node):
        if isinstance(n, ast.Name) and n.id == "BatchKernel":
            return "constructs BatchKernel"
        if isinstance(n, ast.Call):
            for kw in n.keywords:
                if kw.arg == "kernel" and isinstance(kw.value, ast.Constant) \
                        and kw.value.value == "batch":
                    return "calls with kernel='batch'"
    return None


def _call_targets(program: Program, call: ast.Call,
                  enclosing: FunctionInfo) -> list[FunctionInfo]:
    """Bare-name resolution of one call: module functions, methods of
    any class with that method name, nested defs, and classes (their
    constructor).  Over-approximate on purpose -- extra hotness only
    widens the guarded region."""
    name = _bare_callee(call)
    if not name:
        return []
    out = list(program.functions_named(name))
    for cls in program.classes_named(name):
        init = cls.methods.get("__init__")
        if init is not None:
            out.append(init)
    return out


def _hot_region(
    program: Program,
    entries: dict[str, str],
) -> dict[str, str]:
    """BFS from the entries over bare-name call edges; returns
    qualname -> provenance chain ("entry -> helper -> leaf")."""
    by_qual = {f.qualname: f for f in program.all_functions()}
    parents: dict[str, str] = {q: "" for q in entries}
    queue = list(entries)
    while queue:
        qual = queue.pop(0)
        info = by_qual.get(qual)
        if info is None:
            continue
        succs: list[str] = []
        node = info.node
        scan_root = node if not isinstance(node, ast.Lambda) else node.body
        for n in ast.walk(scan_root):
            if isinstance(n, ast.Call):
                succs.extend(
                    t.qualname for t in _call_targets(program, n, info)
                )
        # an enclosing hot function heats its nested defs (they run on
        # its data even when only ever passed to an executor)
        prefix = qual + ".<locals>."
        succs.extend(
            q for q in program.nested_functions
            if q.startswith(prefix) and q.count(".<locals>.") ==
            qual.count(".<locals>.") + 1
        )
        for s in succs:
            if s not in parents and s in by_qual:
                parents[s] = qual
                queue.append(s)
    chains: dict[str, str] = {}
    for q in parents:
        hops = []
        cur = q
        while cur:
            hops.append(cur.rsplit(".", 1)[-1])
            cur = parents.get(cur, "")
        hops.reverse()
        chains[q] = " -> ".join(hops)
    return chains


# -- the rules -----------------------------------------------------------


def _check_fn(
    info: FunctionInfo,
    chain: str,
    env: sh.ShapeEnv,
    ann: sh.FnAnnotation | None,
) -> list[Finding]:
    node = info.node
    if isinstance(node, ast.Lambda):
        return []
    out: list[Finding] = []
    scan = _scan_fn(node)
    short = info.qualname.rsplit(".", 1)[-1]

    # seed and run the shape pass (collects RPRHOT005 material)
    if ann is not None:
        for name, val in ann.shapes.items():
            env.set(name, val)
    sh.infer_body(node, env)

    # RPRHOT001 -- per-element for loops, via the loop-stamped CFG
    cfg = build_cfg(node)
    for cnode in cfg.nodes:
        if cnode.role != "for-header" or not cnode.payload:
            continue
        iter_expr = cnode.payload[0]
        v = sh.infer_expr(iter_expr, env)
        text = _unparse(iter_expr)
        is_arr = v.is_array
        if not is_arr and not HOT_NAME_RE.search(text):
            continue
        what = (
            f"inferred array {v.format()}" if is_arr
            else "hot-lexicon data"
        )
        depth_note = (
            f" (nested at loop depth {cnode.loop_depth})"
            if cnode.loop_depth else ""
        )
        out.append(Finding(
            rule_id="RPRHOT001",
            path=info.path, line=cnode.line, col=cnode.col + 1,
            func=info.qualname,
            message=(
                f"per-element Python for loop over `{text}` ({what}) in "
                f"hot function `{short}`{depth_note}; batch the sweep "
                f"instead; reached via {chain}"
            ),
        ))

    # RPRHOT002/003/006 -- call-site rules
    has_accounting = bool(scan.names & ACCOUNTING_MARKERS)
    for call, depth in scan.calls:
        name = _bare_callee(call)
        if not name:
            continue
        if depth >= 1 and name in SCALAR_PREDICATES:
            out.append(Finding(
                rule_id="RPRHOT002",
                path=info.path, line=call.lineno, col=call.col_offset + 1,
                func=info.qualname,
                message=(
                    f"scalar predicate `{name}` called inside a loop in "
                    f"hot function `{short}`; amortize it across the "
                    f"whole conflict sequence; reached via {chain}"
                ),
            ))
        if depth >= 1:
            f = call.func
            if isinstance(f, ast.Attribute) and isinstance(f.value, ast.Name) \
                    and f.value.id in ("np", "numpy") and f.attr in ALLOC_NP:
                out.append(Finding(
                    rule_id="RPRHOT003",
                    path=info.path, line=call.lineno,
                    col=call.col_offset + 1,
                    func=info.qualname,
                    message=(
                        f"array allocation `np.{f.attr}` inside a hot "
                        f"loop in `{short}` (quadratic churn); hoist or "
                        f"preallocate; reached via {chain}"
                    ),
                ))
            elif isinstance(f, ast.Attribute) and f.attr in LIST_GROW \
                    and HOT_NAME_RE.search(_unparse(f.value)):
                out.append(Finding(
                    rule_id="RPRHOT003",
                    path=info.path, line=call.lineno,
                    col=call.col_offset + 1,
                    func=info.qualname,
                    message=(
                        f"list growth `{_unparse(f.value)}.{f.attr}` "
                        f"inside a hot loop in `{short}` (quadratic "
                        f"churn); reached via {chain}"
                    ),
                ))
        if name in BATCH_SWEEPS and not has_accounting:
            out.append(Finding(
                rule_id="RPRHOT006",
                path=info.path, line=call.lineno, col=call.col_offset + 1,
                func=info.qualname,
                message=(
                    f"batched sweep `{name}` in `{short}` has no "
                    "work-span accounting marker (add_batched_sweep / "
                    "add_task / count_sweep / visibility_tests); E2/E13 "
                    "cost accounting would silently drift"
                ),
            ))

    # RPRHOT004 -- object-dtype arrays out of statement values
    seen_lines: set[int] = set()
    for value in scan.values:
        if isinstance(value, ast.Name):
            continue  # flag the creation point, not every later mention
        v = sh.infer_expr(value, env)
        if v.is_array and v.dtype == "object" and value.lineno not in seen_lines:
            seen_lines.add(value.lineno)
            out.append(Finding(
                rule_id="RPRHOT004",
                path=info.path, line=value.lineno, col=value.col_offset + 1,
                func=info.qualname,
                message=(
                    f"object-dtype array `{_unparse(value)[:60]}` in hot "
                    f"function `{short}` (float64 -> Fraction crossing "
                    "kills vectorization); keep exact values out of the "
                    "sweep arrays"
                ),
            ))

    # RPRHOT005 -- definite shape inconsistencies from the interpreter
    # (deduped: the dtype rule above re-infers statement values through
    # the same env, so a mismatch can be recorded twice)
    for line, col, msg in dict.fromkeys(env.mismatches):
        out.append(Finding(
            rule_id="RPRHOT005",
            path=info.path, line=line, col=col + 1,
            func=info.qualname,
            message=f"shape inconsistency in hot function `{short}`: {msg}",
        ))
    return out


# -- pipeline ------------------------------------------------------------


@dataclass
class HotpathResult:
    program: Program
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    #: hot qualname -> provenance chain from its entry
    hot: dict[str, str] = field(default_factory=dict)
    #: entry qualname -> why it is an entry
    entries: dict[str, str] = field(default_factory=dict)
    #: qualname -> parsed boundary annotation
    annotations: dict[str, sh.FnAnnotation] = field(default_factory=dict)

    def suppressions(self) -> list[SuppressionComment]:
        """Noqa comments that (could) cover RPRHOT rules: blanket ones
        plus explicit RPRHOT codes.  The ratchet pins their count."""
        out = []
        for c in iter_suppressions(self.program.files):
            if c.codes is None or any(x.startswith("RPRHOT") for x in c.codes):
                out.append(c)
        return out


def _exempt(path: str) -> bool:
    return any(path.endswith(suffix) for suffix in HOT_EXEMPT)


def analyze_hotpaths(
    paths: Sequence[str],
    sources: dict[str, str] | None = None,
) -> HotpathResult:
    """Parse, find the hot region, run RPRHOT001-006, apply noqa."""
    program = build_program(paths, sources=sources)

    # parse boundary annotations, keyed by (path, def line) -> qualname
    ann_by_key: dict[tuple[str, int], sh.FnAnnotation] = {}
    for f in program.files:
        for lineno, ann in sh.parse_annotations(f.source, f.tree).items():
            ann_by_key[(f.posix, lineno)] = ann
    annotations: dict[str, sh.FnAnnotation] = {}
    bare_ann: dict[str, sh.FnAnnotation] = {}
    for info in program.all_functions():
        if isinstance(info.node, ast.Lambda):
            continue
        ann = ann_by_key.get((info.path, info.node.lineno))
        if ann is not None:
            ann.qualname = info.qualname
            annotations[info.qualname] = ann
            bare_ann[info.qualname.rsplit(".", 1)[-1]] = ann

    entries: dict[str, str] = {}
    for info in program.all_functions():
        reason = _entry_reason(info, info.qualname in annotations)
        if reason is not None:
            entries[info.qualname] = reason
    hot = _hot_region(program, entries)

    findings: list[Finding] = [
        Finding(
            rule_id="RPRHOT999", path=v.path, line=v.line, col=v.col,
            message=v.message,
        )
        for v in program.errors
    ]
    by_qual = {f.qualname: f for f in program.all_functions()}
    for qual in sorted(hot):
        info = by_qual.get(qual)
        if info is None or _exempt(info.path):
            continue
        env = sh.ShapeEnv(bare_ann)
        findings.extend(
            _check_fn(info, hot[qual], env, annotations.get(qual))
        )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))

    source_by_path = {f.posix: f.source for f in program.files}
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    for f in findings:
        lines = suppressed_lines(source_by_path.get(f.path, ""))
        codes = lines.get(f.line, frozenset())
        if codes is None or f.rule_id in codes:
            suppressed.append(f)
        else:
            kept.append(f)
    return HotpathResult(
        program=program, findings=kept, suppressed=suppressed,
        hot=hot, entries=entries, annotations=annotations,
    )


def render_hot_text(result: HotpathResult, verbose: bool = False) -> str:
    lines = [f.format() for f in result.findings]
    summary = (
        f"repro hotpath: {len(result.findings)} finding(s), "
        f"{len(result.suppressed)} suppressed; "
        f"{len(result.entries)} entry point(s), "
        f"{len(result.hot)} hot function(s), "
        f"{len(result.annotations)} annotated boundary(ies)"
    )
    if verbose:
        lines.append("entry points:")
        lines.extend(
            f"  {q}: {why}" for q, why in sorted(result.entries.items())
        )
        lines.append("hot region:")
        lines.extend(
            f"  {chain}" for _, chain in sorted(result.hot.items())
        )
    lines.append(summary)
    return "\n".join(lines)


def check_recorded_events(
    result: HotpathResult,
    recorder: "sh.ShapeRecorder",
) -> list[str]:
    """The dynamic soundness differential: every recorded ``(shape,
    dtype)`` fact at an annotated boundary must be admitted by the
    static abstraction, with symbol bindings consistent *within* each
    event.  Returns violations (empty == sound)."""
    problems: list[str] = []
    for qual, facts in recorder.events:
        ann = result.annotations.get(qual)
        if ann is None:
            continue  # unannotated boundary: abstraction is top
        for p in sh.check_event(ann, facts):
            problems.append(f"{qual}: {p}")
    return problems
