"""Per-function control-flow graphs over the Python AST.

The step-atomicity and dead-yield checks reason about *maximal
yield-to-yield segments* of a step generator -- every path between two
preemption points, including loop wrap-arounds.  Enumerating paths is
exponential, so the checks run small forward dataflow problems over a
statement-level CFG instead; this module builds that CFG.

Shape
-----
Nodes are simple statements or the *headers* of compound statements
(an ``if``/``while`` test, a ``for`` iterable, the items of a
``with``).  Each node carries the expressions whose effects belong to
it (``payload``) and the set of mutexes syntactically held there
(``held`` -- the ``with self._mutex:`` nesting, used by the static
lockset check).  A statement containing a ``yield`` becomes a
``yield`` node: the preemption points that delimit segments.

Approximations (stated honestly, see ARCHITECTURE):

* ``try`` blocks add an edge from every body node to every handler, so
  an exception at any point is covered; ``raise``/``return`` route to
  the function exit.
* loop tests are not evaluated -- both the "enter" and "skip" edges
  always exist, so ``while True:`` also has a static exit edge.  The
  dataflow lattices are monotone joins, so extra edges only ever make
  the analysis more conservative.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..lint.core import walk_shallow

__all__ = ["Node", "CFG", "build_cfg", "max_flow", "reaches_before_yield"]


@dataclass
class Node:
    nid: int
    kind: str  # "entry" | "exit" | "stmt" | "yield"
    payload: tuple[ast.AST, ...] = ()
    succs: set[int] = field(default_factory=set)
    held: frozenset[str] = frozenset()
    line: int = 0
    col: int = 0
    #: number of enclosing loops whose body re-executes this node.  A
    #: ``for`` header evaluates its iterable once (enclosing depth); a
    #: ``while`` header re-evaluates its test every iteration (body
    #: depth).  The hot-path checks key on this.
    loop_depth: int = 0
    #: "" | "for-header" | "while-header" -- lets clients distinguish
    #: loop headers without re-matching payloads against the AST.
    role: str = ""


class CFG:
    """A per-function CFG; node 0 is entry, node 1 the single exit."""

    def __init__(self) -> None:
        self.nodes: list[Node] = [Node(0, "entry"), Node(1, "exit")]

    @property
    def entry(self) -> Node:
        return self.nodes[0]

    @property
    def exit(self) -> Node:
        return self.nodes[1]

    def new(
        self,
        kind: str,
        payload: tuple[ast.AST, ...],
        held: frozenset[str],
        loop_depth: int = 0,
        role: str = "",
    ) -> Node:
        node = Node(len(self.nodes), kind, payload, set(), held,
                    loop_depth=loop_depth, role=role)
        anchor = payload[0] if payload else None
        node.line = getattr(anchor, "lineno", 0)
        node.col = getattr(anchor, "col_offset", 0)
        self.nodes.append(node)
        return node

    def link(self, preds: Iterable[int], nid: int) -> None:
        for p in preds:
            self.nodes[p].succs.add(nid)

    def yields(self) -> list[Node]:
        return [n for n in self.nodes if n.kind == "yield"]


_SIMPLE_EXIT = (ast.Return, ast.Raise)


def _contains_yield(stmt: ast.stmt) -> bool:
    return any(isinstance(n, (ast.Yield, ast.YieldFrom)) for n in walk_shallow(stmt))


def build_cfg(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    mutex_of: Callable[[ast.expr], str | None] = lambda e: None,
) -> CFG:
    """Build the CFG of ``func``.

    ``mutex_of`` maps a ``with``-item context expression to a mutex
    identity (e.g. ``"self._mutex"``) or None; matched items extend the
    ``held`` set of every node in the block's body.
    """
    cfg = CFG()

    def build(stmts, preds, held, break_to, continue_to, depth=0):
        """Wire ``stmts`` after ``preds``; returns the dangling preds."""
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested defs are separate functions
            if isinstance(stmt, ast.If):
                test = cfg.new("stmt", (stmt.test,), held, depth)
                cfg.link(preds, test.nid)
                out = build(stmt.body, [test.nid], held, break_to, continue_to, depth)
                # An empty orelse returns [test.nid]: the fall-through edge.
                out += build(stmt.orelse, [test.nid], held, break_to, continue_to,
                             depth)
                preds = list(dict.fromkeys(out))
            elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
                is_while = isinstance(stmt, ast.While)
                header_expr = stmt.test if is_while else stmt.iter
                # a for-iterable is evaluated once (enclosing depth); a
                # while-test re-runs every iteration (body depth)
                header = cfg.new(
                    "stmt", (header_expr,), held,
                    depth + 1 if is_while else depth,
                    role="while-header" if is_while else "for-header",
                )
                cfg.link(preds, header.nid)
                breaks: list[int] = []
                out = build(stmt.body, [header.nid], held, breaks, header.nid,
                            depth + 1)
                cfg.link(out, header.nid)  # loop wrap-around
                preds = build(stmt.orelse, [header.nid], held, break_to,
                              continue_to, depth) or [header.nid]
                preds = list(set(preds) | set(breaks))
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                items = cfg.new("stmt", tuple(i.context_expr for i in stmt.items),
                                held, depth)
                cfg.link(preds, items.nid)
                grabbed = {m for i in stmt.items
                           if (m := mutex_of(i.context_expr)) is not None}
                inner = held | frozenset(grabbed)
                preds = build(stmt.body, [items.nid], inner, break_to,
                              continue_to, depth)
            elif isinstance(stmt, ast.Try):
                first = len(cfg.nodes)
                body_out = build(stmt.body, preds, held, break_to, continue_to,
                                 depth)
                body_nodes = list(range(first, len(cfg.nodes)))
                handler_outs: list[int] = []
                for handler in stmt.handlers:
                    h_preds = list(set(body_nodes) | set(preds))
                    handler_outs += build(
                        handler.body, h_preds, held, break_to, continue_to, depth
                    )
                else_out = build(stmt.orelse, body_out, held, break_to,
                                 continue_to, depth) \
                    if stmt.orelse else body_out
                merged = list(set(else_out) | set(handler_outs))
                if stmt.finalbody:
                    preds = build(stmt.finalbody, merged or preds, held,
                                  break_to, continue_to, depth)
                else:
                    preds = merged
            elif isinstance(stmt, ast.Break):
                node = cfg.new("stmt", (stmt,), held, depth)
                cfg.link(preds, node.nid)
                if break_to is not None:
                    break_to.append(node.nid)
                preds = []
            elif isinstance(stmt, ast.Continue):
                node = cfg.new("stmt", (stmt,), held, depth)
                cfg.link(preds, node.nid)
                if continue_to is not None:
                    cfg.link([node.nid], continue_to)
                preds = []
            else:
                kind = "yield" if _contains_yield(stmt) else "stmt"
                node = cfg.new(kind, (stmt,), held, depth)
                cfg.link(preds, node.nid)
                if isinstance(stmt, _SIMPLE_EXIT):
                    cfg.link([node.nid], cfg.exit.nid)
                    preds = []
                else:
                    preds = [node.nid]
            if not preds:
                # Everything after an unconditional exit is dead code;
                # keep building (nodes stay unreachable from entry).
                preds = []
        return preds

    out = build(func.body, [cfg.entry.nid], frozenset(), None, None)
    cfg.link(out, cfg.exit.nid)
    return cfg


def max_flow(
    cfg: CFG,
    transfer: Callable[[Node, int], int],
    start: int = 0,
    top: int = 2,
) -> dict[int, int]:
    """Forward max-join dataflow over the saturating counter lattice
    ``{0..top}``: ``state_in(n) = max over preds``, ``state_out(n) =
    transfer(n, state_in)``.  Returns the fixpoint ``state_in`` map --
    for each node, the largest count on *some* path reaching it (a
    may-analysis, which is what violation detection needs).
    """
    state_in = {cfg.entry.nid: start}
    out_cache: dict[int, int] = {}
    work = [cfg.entry.nid]
    while work:
        nid = work.pop()
        node = cfg.nodes[nid]
        out = min(top, transfer(node, state_in[nid]))
        if out_cache.get(nid) == out:
            continue
        out_cache[nid] = out
        for s in node.succs:
            if out > state_in.get(s, -1):
                state_in[s] = out
                work.append(s)
    return state_in


def reaches_before_yield(cfg: CFG, start: Node, effectful: Callable[[Node], bool]) -> bool:
    """True when some path from ``start``'s successors reaches an
    effectful node before hitting another yield (or falling off the
    exit) -- i.e. the yield at ``start`` covers at least one access on
    at least one path.  Used by the dead-yield check (RPREFF004)."""
    seen: set[int] = set()
    work = list(start.succs)
    while work:
        nid = work.pop()
        if nid in seen:
            continue
        seen.add(nid)
        node = cfg.nodes[nid]
        if effectful(node):
            return True
        if node.kind == "yield":
            continue  # next segment starts; stop exploring this branch
        work.extend(node.succs)
    return False
