"""The effect lattice of the interprocedural analyzer.

Every expression in the tree is abstracted to one of five effect
levels, ordered by how much of the concurrency model it can disturb::

    pure < local < shared-read < atomic-op < raw-shared-write

``pure``
    No observable effect (literals, arithmetic, exact predicates).
``local``
    Mutates only state owned by the current task (locals, fresh
    objects, configuration attributes fixed at construction).
``shared-read``
    Observes shared mutable state through a sanctioned interface: an
    atomic load (``AtomicCell.load``, ``AtomicFlag.is_set``) or a read
    of a registered plain field of a shared slot (``_TASSlot.data``).
``atomic-op``
    A linearization point: an atomic RMW/store (``compare_and_swap``,
    ``test_and_set``, ``store``, ``fetch_add``) or the *announced*
    plain write of a registered shared field directly inside a step
    generator (covered by its own yield, the Appendix-A idiom).
``raw-shared-write``
    A mutation of shared state that bypasses the atomics: rebinding an
    atomic-typed attribute, storing into a shared container slot,
    writing a shared slot's plain field from anywhere the scheduler
    cannot see, or dispatching dynamically (``getattr``/``exec``) where
    the callee -- and hence its effect -- is statically unknown.

The lattice is a chain, so *join* is ``max`` and the abstract domains
built on it (per-function summaries, per-segment access counts) are
finite; the interprocedural fixpoint in :mod:`repro.analyze.interproc`
terminates by monotonicity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "Effect",
    "Site",
    "MANY",
    "ATOMIC_CLASS_NAMES",
    "ATOMIC_READ_METHODS",
    "ATOMIC_RMW_METHODS",
    "MUTEX_CLASS_NAMES",
    "CONTAINER_MUTATORS",
    "DYNAMIC_DISPATCH_CALLS",
    "EFFECT_ALLOWLIST",
]


class Effect(enum.IntEnum):
    """The chain lattice; ``max`` is join."""

    PURE = 0
    LOCAL = 1
    SHARED_READ = 2
    ATOMIC_OP = 3
    RAW_SHARED_WRITE = 4

    @property
    def label(self) -> str:
        return self.name.lower().replace("_", "-")

    @property
    def is_shared(self) -> bool:
        """At least observes shared state (counts against a yield)."""
        return self >= Effect.SHARED_READ


#: Saturation bound of the per-segment access counter: 0, 1, "2 or
#: more".  Step atomicity only needs to distinguish "at most one".
MANY = 2


@dataclass(frozen=True)
class Site:
    """One classified source location with a shared effect.

    The union of all sites (over every analysed function) is the static
    shared-effect set the soundness differential test compares against
    the dynamic race checker's observed accesses.
    """

    path: str  # posix path, as analysed
    line: int
    col: int
    func: str  # qualified name of the containing function
    effect: Effect
    descr: str  # e.g. "AtomicCell.compare_and_swap"

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.effect.label}] {self.descr}"

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "func": self.func,
            "effect": self.effect.label,
            "descr": self.descr,
        }


#: Classes whose instances are atomic cells, matched by bare class
#: name so fixture programs (and future backends) are analysed the
#: same way as :mod:`repro.runtime.atomics`.
ATOMIC_CLASS_NAMES = frozenset({"AtomicCell", "AtomicFlag", "AtomicCounter"})

#: Atomic interface methods, mirrored from the dynamic instrumentation
#: table ``racecheck._ATOMIC_METHODS``.
ATOMIC_READ_METHODS = frozenset({"load", "is_set"})
ATOMIC_RMW_METHODS = frozenset({"store", "compare_and_swap", "test_and_set", "fetch_add"})

#: The sanctioned lock interface (RPR002's Mutex).
MUTEX_CLASS_NAMES = frozenset({"Mutex"})

#: Method names that mutate a built-in container in place; calling one
#: on a shared container is a raw shared write.
CONTAINER_MUTATORS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "setdefault", "add", "discard", "sort", "reverse",
})

#: Builtins whose *call result* being called -- or which themselves run
#: arbitrary code -- make the callee statically unknowable.  These go
#: to lattice top (conservative), per the dynamic-dispatch policy.
DYNAMIC_DISPATCH_CALLS = frozenset({"getattr", "eval", "exec", "compile", "__import__"})

#: Modules whose *bodies* are exempt from raw-effect classification:
#: the primitives themselves.  Mirrors RPR002's THREADING_ALLOWLIST --
#: these files hold the sanctioned raw locks/threads, and their
#: interfaces are what the call-site classification table models.
EFFECT_ALLOWLIST = (
    "runtime/atomics.py",
    "runtime/executors.py",
    "runtime/chaos.py",
)
