"""Interprocedural effect propagation: the analyzer's fixpoint engine.

Each function body is abstracted to

* a **summary** ``(level, count)``: the join over all paths of the
  effects it may perform (``level``, an :class:`~repro.analyze.effects.
  Effect`), and how many *shared accesses* some single execution may
  perform (``count``, saturating at :data:`MANY`);
* per-CFG-node **effect items** -- the classified calls, reads and
  writes at that node, in source order, each carrying the callee edge
  (for provenance) and the syntactic lockset;
* **call edges** and **write records** consumed by the checks.

Summaries depend on callee summaries, parameter types flow from call
sites to callees, and "which plain fields of a shared slot are ever
mutated" depends on writes found anywhere in the program -- so the
whole thing runs as one round-based fixpoint: re-analyze every function
until summaries, parameter types and mutated-field sets all stop
changing.  Every one of those domains is finite and grows monotonically
(effects only join upward, type sets and field sets only gain
elements), so the fixpoint terminates.

A second, *decreasing* fixpoint then computes entry locksets
(Eraser-style): public functions are assumed callable with no locks
held; underscore-prefixed helpers start at "all locks" and intersect
over their call sites, each contributing the locks syntactically held
at the site plus the caller's own entry lockset.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Sequence

from ..lint.core import walk_shallow
from .callgraph import EXTERNAL, ClassInfo, FunctionInfo, Program
from .cfg import CFG, Node, build_cfg, max_flow
from .effects import (
    ATOMIC_CLASS_NAMES,
    ATOMIC_READ_METHODS,
    ATOMIC_RMW_METHODS,
    CONTAINER_MUTATORS,
    MANY,
    MUTEX_CLASS_NAMES,
    Effect,
    Site,
)

__all__ = ["Summary", "EffectItem", "CallEdge", "WriteRecord", "FnAnalysis", "Analysis"]

#: Universal lockset (lattice top of the must-hold analysis).
TOP_LOCKS = None


@dataclass(frozen=True)
class Summary:
    level: Effect = Effect.PURE
    count: int = 0  # shared accesses on some path, saturated at MANY

    def join(self, other: "Summary") -> "Summary":
        return Summary(
            max(self.level, other.level),
            min(MANY, max(self.count, other.count)),
        )


@dataclass
class EffectItem:
    """One classified effect inside a CFG node, in source order."""

    effect: Effect
    count: int  # shared accesses this item contributes (callees included)
    line: int
    col: int
    descr: str
    callee: str | None = None  # provenance for interprocedural findings
    held: frozenset[str] = frozenset()


@dataclass(frozen=True)
class CallEdge:
    caller: str
    callee: str
    line: int
    col: int
    held: frozenset[str]


@dataclass(frozen=True)
class WriteRecord:
    """A write (or in-place mutation) of a field of a mutex-owning
    class, with the locks syntactically held at the site."""

    cls: str  # class qualname
    attr: str
    func: str  # writing function qualname
    path: str
    line: int
    col: int
    held: frozenset[str]


@dataclass
class FnAnalysis:
    info: FunctionInfo
    cfg: CFG | None = None  # None for lambdas
    node_items: dict[int, list[EffectItem]] = field(default_factory=dict)
    edges: list[CallEdge] = field(default_factory=list)
    writes: list[WriteRecord] = field(default_factory=list)
    summary: Summary = field(default_factory=Summary)

    def sites(self) -> list[Site]:
        """Own (direct, non-callee) shared-effect sites."""
        out = []
        for items in self.node_items.values():
            for it in items:
                if it.callee is None and it.effect.is_shared:
                    out.append(Site(
                        path=self.info.path, line=it.line, col=it.col,
                        func=self.info.qualname, effect=it.effect,
                        descr=it.descr,
                    ))
        return sorted(out, key=lambda s: (s.line, s.col))

    def raw_sites(self) -> list[Site]:
        return [s for s in self.sites() if s.effect is Effect.RAW_SHARED_WRITE]


class Analysis:
    """Whole-program analysis state; build with :meth:`run`."""

    MAX_ROUNDS = 32

    def __init__(self, program: Program):
        self.program = program
        self.fns: dict[str, FnAnalysis] = {}
        self.entry_locks: dict[str, frozenset[str] | None] = {}
        self._changed = False
        self._notes: set[str] = set()

    # -- public API ------------------------------------------------------

    @classmethod
    def run(cls, program: Program) -> "Analysis":
        self = cls(program)
        self._fixpoint()
        self._entry_lockset_fixpoint()
        return self

    def shared_sites(self) -> list[Site]:
        """Every direct shared-effect site in the analysed program: the
        static set the dynamic race checker's observations must be a
        subset of (the soundness differential)."""
        out: list[Site] = []
        for fa in self.fns.values():
            out.extend(fa.sites())
        return sorted(out, key=lambda s: (s.path, s.line, s.col))

    def step_generators(self) -> list[FnAnalysis]:
        return [fa for fa in self.fns.values() if fa.info.is_step_gen]

    def notes(self) -> list[str]:
        """Human-readable records of deliberate imprecision (unknown
        callables assumed local, etc.)."""
        return sorted(self._notes)

    def effective_lockset(self, fa: FnAnalysis, held: frozenset[str]) -> frozenset[str] | None:
        entry = self.entry_locks.get(fa.info.qualname, frozenset())
        if entry is TOP_LOCKS:
            return TOP_LOCKS
        return held | entry

    # -- round-based ascending fixpoint ---------------------------------

    def _fixpoint(self) -> None:
        infos = [
            info for info in self.program.functions.values()
            if not info.allowlisted
        ]
        for info in self.program.functions.values():
            if info.allowlisted:
                # Primitive bodies are the sanctioned implementation;
                # their *interfaces* are modelled by the call tables.
                fa = FnAnalysis(info=info, summary=Summary(Effect.LOCAL, 0))
                self.fns[info.qualname] = fa
        for rounds in range(self.MAX_ROUNDS):
            self._changed = False
            for info in infos:
                self._analyze_function(info)
            if not self._changed:
                return
        raise RuntimeError(
            "effect fixpoint did not converge in "
            f"{self.MAX_ROUNDS} rounds (analyzer bug)"
        )

    def summary_of(self, qual: str) -> Summary:
        fa = self.fns.get(qual)
        return fa.summary if fa is not None else Summary(Effect.LOCAL, 0)

    def _mark_changed(self) -> None:
        self._changed = True

    def _analyze_function(self, info: FunctionInfo) -> None:
        fa = self.fns.get(info.qualname)
        if fa is None:
            fa = FnAnalysis(info=info)
            if not isinstance(info.node, ast.Lambda):
                fa.cfg = build_cfg(info.node, mutex_of=self._mutex_of(info))
            self.fns[info.qualname] = fa
        fa.node_items = {}
        fa.edges = []
        fa.writes = []
        env = self._build_env(info)
        self._env_cache[info.qualname] = env
        if fa.cfg is None:  # lambda: one implicit node
            items = self._classify_node_exprs(
                [info.node.body], frozenset(), info, env, fa
            )
            fa.node_items[0] = items
            level = Effect.PURE
            count = 0
            for it in items:
                level = max(level, it.effect)
                count = min(MANY, count + it.count)
            new = Summary(level, count)
        else:
            for node in fa.cfg.nodes:
                if node.kind in ("entry", "exit"):
                    continue
                fa.node_items[node.nid] = self._classify_node_exprs(
                    list(node.payload), node.held, info, env, fa
                )
            new = self._summarize(fa)
        if new != fa.summary:
            fa.summary = new
            self._mark_changed()

    def _summarize(self, fa: FnAnalysis) -> Summary:
        level = Effect.PURE
        for items in fa.node_items.values():
            for it in items:
                level = max(level, it.effect)

        def transfer(node: Node, n: int) -> int:
            # No yield reset: the summary is the whole-body account a
            # *caller* charges against its own current segment.
            for it in fa.node_items.get(node.nid, ()):
                n = min(MANY, n + it.count)
            return n

        state_in = max_flow(fa.cfg, transfer, start=0, top=MANY)
        count = state_in.get(fa.cfg.exit.nid, 0)
        # A path that never reaches the static exit (e.g. an infinite
        # generator loop) still performs its per-iteration accesses:
        # join over every reachable node's out-state.
        for node in fa.cfg.nodes:
            if node.nid in state_in:
                count = max(count, transfer(node, state_in[node.nid]))
        if level.is_shared:
            count = max(count, 1)
        return Summary(level, min(MANY, count))

    # -- flow-insensitive local type environment ------------------------

    def _mutex_of(self, info: FunctionInfo):
        def mutex_of(expr: ast.expr) -> str | None:
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and info.cls is not None
                and expr.attr in info.cls.mutex_attrs
            ):
                return f"{info.cls.qualname}.{expr.attr}"
            return None

        return mutex_of

    def _build_env(self, info: FunctionInfo) -> dict[str, set]:
        env: dict[str, set] = {}
        if isinstance(info.node, ast.Lambda):
            return env
        for _ in range(2):  # two passes resolve simple forward refs
            for n in walk_shallow(info.node):
                if isinstance(n, ast.Assign):
                    trefs = self._trefs(n.value, info, env)
                    for t in n.targets:
                        if isinstance(t, ast.Name):
                            self._env_add(env, t.id, trefs)
                elif isinstance(n, ast.AnnAssign) and n.value is not None:
                    if isinstance(n.target, ast.Name):
                        self._env_add(env, n.target.id,
                                      self._trefs(n.value, info, env))
                elif isinstance(n, (ast.For, ast.AsyncFor)):
                    if isinstance(n.target, ast.Name):
                        self._env_add(env, n.target.id,
                                      self._elem_trefs(n.iter, info, env))
                elif isinstance(n, ast.comprehension):
                    if isinstance(n.target, ast.Name):
                        self._env_add(env, n.target.id,
                                      self._elem_trefs(n.iter, info, env))
                elif isinstance(n, (ast.With, ast.AsyncWith)):
                    for item in n.items:
                        if isinstance(item.optional_vars, ast.Name):
                            self._env_add(
                                env, item.optional_vars.id,
                                self._trefs(item.context_expr, info, env),
                            )
        return env

    @staticmethod
    def _env_add(env: dict[str, set], name: str, trefs: set) -> None:
        typed = {t for t in trefs if t[0] in ("cls", "elem", "func")}
        if typed:
            env.setdefault(name, set()).update(typed)

    def _elem_trefs(self, expr: ast.expr, info, env) -> set:
        out = set()
        for t in self._trefs(expr, info, env):
            if t[0] == "elem":
                out.add(("cls", t[1]))
        return out or {EXTERNAL}

    def _trefs(self, expr: ast.expr, info: FunctionInfo, env: dict[str, set]) -> set:
        """Flow-insensitive types of an expression."""
        p = self.program
        if isinstance(expr, ast.Name):
            if expr.id == "self" and info.cls is not None:
                return {("cls", info.cls.qualname)}
            out = set()
            out |= env.get(expr.id, set())
            out |= info.param_types.get(expr.id, set())
            return out or {EXTERNAL}
        if isinstance(expr, ast.Attribute):
            out = set()
            for t in self._trefs(expr.value, info, env):
                cls = p.class_of_tref(t) if t[0] == "cls" else None
                if cls is not None:
                    out |= cls.attr_types.get(expr.attr, set())
            return out or {EXTERNAL}
        if isinstance(expr, ast.Subscript):
            return self._elem_trefs(expr.value, info, env)
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            trefs = p.type_of_call(expr.func.id)
            if any(t[0] == "cls" for t in trefs):
                return {t for t in trefs if t[0] == "cls"}
            return {EXTERNAL}
        if isinstance(expr, ast.Lambda):
            return {("func",
                     f"{info.qualname}.<lambda:{expr.lineno}:{expr.col_offset}>")}
        if isinstance(expr, ast.BoolOp):
            out = set()
            for v in expr.values:
                out |= self._trefs(v, info, env)
            return out
        if isinstance(expr, ast.IfExp):
            return (self._trefs(expr.body, info, env)
                    | self._trefs(expr.orelse, info, env))
        if isinstance(expr, (ast.Await, ast.Starred)):
            return self._trefs(expr.value, info, env)
        return {EXTERNAL}

    # -- per-node classification ----------------------------------------

    def _classify_node_exprs(
        self,
        payload: Sequence[ast.AST],
        held: frozenset[str],
        info: FunctionInfo,
        env: dict[str, set],
        fa: FnAnalysis,
    ) -> list[EffectItem]:
        items: list[EffectItem] = []
        for root in payload:
            nodes = [root] if isinstance(root, (ast.expr,)) else []
            nodes += list(walk_shallow(root))
            for n in nodes:
                if isinstance(n, ast.Call):
                    items.extend(self._classify_call(n, held, info, env, fa))
                elif isinstance(n, ast.Attribute):
                    if isinstance(n.ctx, (ast.Store, ast.Del)):
                        items.extend(
                            self._classify_attr_store(n, held, info, env, fa)
                        )
                    else:
                        items.extend(
                            self._classify_attr_load(n, held, info, env)
                        )
                elif isinstance(n, ast.Subscript) and isinstance(
                    n.ctx, (ast.Store, ast.Del)
                ):
                    items.extend(
                        self._classify_subscript_store(n, held, info, env, fa)
                    )
        items.sort(key=lambda it: (it.line, it.col))
        return items

    # .. calls ...........................................................

    def _classify_call(self, call, held, info, env, fa) -> list[EffectItem]:
        f = call.func
        line, col = call.lineno, call.col_offset
        p = self.program

        def item(effect, descr, count=None, callee=None):
            if count is None:
                count = 1 if effect.is_shared else 0
            return EffectItem(effect, count, line, col, descr, callee, held)

        if isinstance(f, ast.Name):
            if f.id in ("eval", "exec", "__import__"):
                return [item(Effect.RAW_SHARED_WRITE,
                             f"dynamic dispatch via `{f.id}(...)`: callee "
                             "statically unknown, assumed worst-case",
                             count=MANY)]
            classes = p.classes_named(f.id)
            if classes:
                out = []
                joined = Summary(Effect.PURE, 0)
                for cls in classes:
                    init = p.mro_lookup(cls, "__init__")
                    if init is not None:
                        self._record_edge(fa, info, init, call, held,
                                          bound=True)
                        joined = joined.join(self.summary_of(init.qualname))
                if joined.level.is_shared:
                    out.append(item(joined.level,
                                    f"constructor `{f.id}(...)` "
                                    "(via __init__ summary)",
                                    count=joined.count,
                                    callee=f"{classes[0].qualname}.__init__"))
                return out
            funcs = p.module_functions_named(f.id)
            if funcs:
                return self._call_known(funcs, call, held, info, fa,
                                        bound=False)
            # getattr(..) itself only fetches; calling its *result* is
            # handled below via the ast.Call-func case.  External and
            # builtin callees are assumed local by policy (documented
            # unsoundness hole) -- not worth a per-site note.
            return []

        if isinstance(f, ast.Call):
            if isinstance(f.func, ast.Name) and f.func.id == "getattr":
                return [item(Effect.RAW_SHARED_WRITE,
                             "dynamic dispatch via `getattr(...)(...)`: "
                             "callee statically unknown, assumed worst-case",
                             count=MANY)]
            return []

        if isinstance(f, ast.Attribute):
            m = f.attr
            recv = f.value
            rtrefs = self._trefs(recv, info, env)
            rclasses = [
                c for t in rtrefs if t[0] == "cls"
                and (c := p.class_of_tref(t)) is not None
            ]
            bare_names = {t[1].rsplit(".", 1)[-1] for t in rtrefs
                          if t[0] == "cls"}
            # 1. the atomic interface tables (mirrors the dynamic
            #    instrumentation table racecheck._ATOMIC_METHODS)
            if bare_names & ATOMIC_CLASS_NAMES:
                if m in ATOMIC_READ_METHODS:
                    return [item(Effect.SHARED_READ,
                                 f"atomic load `.{m}()`")]
                if m in ATOMIC_RMW_METHODS:
                    return [item(Effect.ATOMIC_OP,
                                 f"atomic RMW/store `.{m}()`")]
            if bare_names & MUTEX_CLASS_NAMES and m == "locked":
                return [item(Effect.SHARED_READ, "lock-state probe `.locked()`")]
            # 2. in-place mutation of a container attribute
            if m in CONTAINER_MUTATORS:
                out = self._classify_container_mutation(
                    call, recv, m, held, info, env, fa
                )
                if out is not None:
                    return out
            # 3. statically resolved method dispatch
            targets: list[FunctionInfo] = []
            for cls in rclasses:
                targets.extend(p.resolve_method(cls, m))
            if targets:
                return self._call_known(targets, call, held, info, fa,
                                        bound=True)
            # 4. a stored callable (lambda attribute, function ref)
            ftrefs = self._trefs(f, info, env)
            fn_targets = [
                p.functions[t[1]] for t in ftrefs
                if t[0] == "func" and t[1] in p.functions
            ]
            if fn_targets:
                return self._call_known(fn_targets, call, held, info, fa,
                                        bound=False)
            if rclasses:
                self._notes.add(
                    f"{info.path}:{line}: unresolved method "
                    f"`.{m}(...)` on {rclasses[0].name} assumed local"
                )
            return []

        # calling a subscripted / unknown callable value
        ftrefs = self._trefs(f, info, env)
        fn_targets = [
            p.functions[t[1]] for t in ftrefs
            if t[0] == "func" and t[1] in p.functions
        ]
        if fn_targets:
            return self._call_known(fn_targets, call, held, info, fa,
                                    bound=False)
        self._notes.add(
            f"{info.path}:{line}: call through unknown callable assumed local"
        )
        return []

    def _call_known(self, targets, call, held, info, fa, bound) -> list[EffectItem]:
        joined = Summary(Effect.PURE, 0)
        for t in targets:
            self._record_edge(fa, info, t, call, held, bound=bound)
            joined = joined.join(self.summary_of(t.qualname))
        if joined.level is Effect.PURE and joined.count == 0:
            return []
        return [EffectItem(
            joined.level, joined.count, call.lineno, call.col_offset,
            f"call to `{targets[0].name}(...)`"
            + (f" (+{len(targets) - 1} overrides)" if len(targets) > 1 else ""),
            callee=targets[0].qualname, held=held,
        )]

    def _record_edge(self, fa, info, callee: FunctionInfo, call, held, bound) -> None:
        fa.edges.append(CallEdge(
            caller=info.qualname, callee=callee.qualname,
            line=call.lineno, col=call.col_offset, held=held,
        ))
        params = list(callee.param_names)
        if bound and params and params[0] in ("self", "cls"):
            params = params[1:]
        env = self._env_cache.get(info.qualname, {})
        for name, arg in zip(params, call.args):
            if isinstance(arg, ast.Starred):
                break
            self._propagate(callee, name, self._trefs(arg, info, env))
        for kw in call.keywords:
            if kw.arg is not None and kw.arg in callee.param_names:
                self._propagate(callee, kw.arg,
                                self._trefs(kw.value, info, env))

    def _propagate(self, callee: FunctionInfo, name: str, trefs: set) -> None:
        typed = {t for t in trefs if t[0] in ("cls", "elem", "func")}
        if not typed:
            return
        bucket = callee.param_types.setdefault(name, set())
        if not typed <= bucket:
            bucket |= typed
            self._mark_changed()

    # .. attribute reads/writes ..........................................

    def _owner_classes(self, recv: ast.expr, info, env) -> list[ClassInfo]:
        out = []
        for t in self._trefs(recv, info, env):
            if t[0] == "cls":
                cls = self.program.class_of_tref(t)
                if cls is not None:
                    out.append(cls)
        return out

    @staticmethod
    def _is_self(expr: ast.expr) -> bool:
        return isinstance(expr, ast.Name) and expr.id == "self"

    def _classify_attr_load(self, node: ast.Attribute, held, info, env) -> list[EffectItem]:
        for cls in self._owner_classes(node.value, info, env):
            if (
                cls.is_shared_element()
                and node.attr in cls.plain_shared_fields()
            ):
                return [EffectItem(
                    Effect.SHARED_READ, 1, node.lineno, node.col_offset,
                    f"read of shared plain field `{cls.name}.{node.attr}`",
                    held=held,
                )]
        return []

    def _classify_attr_store(self, node: ast.Attribute, held, info, env, fa) -> list[EffectItem]:
        recv = node.value
        attr = node.attr
        self_write = self._is_self(recv)
        if info.is_init and self_write:
            return []  # construction: attributes come into existence
        out: list[EffectItem] = []
        for cls in self._owner_classes(recv, info, env):
            if attr not in cls.mutated_fields:
                cls.mutated_fields.add(attr)
                self._mark_changed()
            if cls.owns_mutex() and attr not in cls.mutex_attrs:
                fa.writes.append(WriteRecord(
                    cls=cls.qualname, attr=attr, func=info.qualname,
                    path=info.path, line=node.lineno,
                    col=node.col_offset, held=held,
                ))
            if attr in cls.mutex_attrs or attr in cls.atomic_attrs \
                    or attr in cls.shared_container_attrs:
                out.append(EffectItem(
                    Effect.RAW_SHARED_WRITE, 1, node.lineno,
                    node.col_offset,
                    f"rebinds atomic/shared attribute "
                    f"`{cls.name}.{attr}` outside construction",
                    held=held,
                ))
            elif cls.is_shared_element() and attr in cls.plain_shared_fields():
                if info.is_step_gen:
                    # The announced-write idiom: a plain store directly
                    # inside a step generator, covered by its own yield
                    # (the dynamic checker treats it identically).
                    out.append(EffectItem(
                        Effect.ATOMIC_OP, 1, node.lineno, node.col_offset,
                        f"announced write of shared plain field "
                        f"`{cls.name}.{attr}`",
                        held=held,
                    ))
                else:
                    out.append(EffectItem(
                        Effect.RAW_SHARED_WRITE, 1, node.lineno,
                        node.col_offset,
                        f"plain write of shared field `{cls.name}.{attr}` "
                        "outside any step generator: invisible to the "
                        "interleave scheduler",
                        held=held,
                    ))
        return out

    def _classify_subscript_store(self, node: ast.Subscript, held, info, env, fa) -> list[EffectItem]:
        recv = node.value
        # self._cells[i] = ... -- storing into a container attribute
        if isinstance(recv, ast.Attribute):
            attr = recv.attr
            for cls in self._owner_classes(recv.value, info, env):
                if attr in cls.shared_container_attrs:
                    if info.is_init and self._is_self(recv.value):
                        return []
                    return [EffectItem(
                        Effect.RAW_SHARED_WRITE, 1, node.lineno,
                        node.col_offset,
                        f"raw store into shared container "
                        f"`{cls.name}.{attr}[...]` (bypasses the atomics)",
                        held=held,
                    )]
                if cls.owns_mutex() and not (
                    info.is_init and self._is_self(recv.value)
                ):
                    fa.writes.append(WriteRecord(
                        cls=cls.qualname, attr=attr, func=info.qualname,
                        path=info.path, line=node.lineno,
                        col=node.col_offset, held=held,
                    ))
        return []

    def _classify_container_mutation(self, call, recv, m, held, info, env, fa):
        """``x.append(...)``-style mutation; returns items, or None when
        the receiver is no container we model (fall through to method
        resolution: ``add`` etc. are common ordinary method names)."""
        if not isinstance(recv, ast.Attribute):
            return None
        attr = recv.attr
        classes = self._owner_classes(recv.value, info, env)
        handled = False
        out: list[EffectItem] = []
        for cls in classes:
            if info.is_init and self._is_self(recv.value):
                handled = True  # populating a fresh container
            elif attr in cls.shared_container_attrs:
                handled = True
                out.append(EffectItem(
                    Effect.RAW_SHARED_WRITE, 1, call.lineno,
                    call.col_offset,
                    f"in-place mutation `.{m}(...)` of shared container "
                    f"`{cls.name}.{attr}`",
                    held=held,
                ))
            elif attr in cls.attr_types or attr in cls.mutated_fields:
                # a known plain attribute: record for the lockset check
                handled = True
                if cls.owns_mutex():
                    fa.writes.append(WriteRecord(
                        cls=cls.qualname, attr=attr, func=info.qualname,
                        path=info.path, line=call.lineno,
                        col=call.col_offset, held=held,
                    ))
        return out if handled else None

    # -- entry locksets (descending fixpoint) ---------------------------

    @staticmethod
    def _assume_unlocked_entry(info: FunctionInfo) -> bool:
        """Public API can be entered with no locks held; underscore
        helpers inherit from their (known) call sites."""
        name = info.name
        if name.startswith("<lambda"):
            return False
        return not name.startswith("_") or (
            name.startswith("__") and name.endswith("__")
        )

    def _entry_lockset_fixpoint(self) -> None:
        for qual, fa in self.fns.items():
            self.entry_locks[qual] = (
                frozenset() if self._assume_unlocked_entry(fa.info)
                else TOP_LOCKS
            )
        callers: dict[str, list[CallEdge]] = {}
        for fa in self.fns.values():
            for e in fa.edges:
                callers.setdefault(e.callee, []).append(e)
        changed = True
        while changed:
            changed = False
            for qual, fa in self.fns.items():
                if self._assume_unlocked_entry(fa.info):
                    continue
                acc: frozenset[str] | None = TOP_LOCKS
                for e in callers.get(qual, ()):
                    caller_entry = self.entry_locks.get(e.caller, frozenset())
                    if caller_entry is TOP_LOCKS:
                        continue  # top contributes nothing to a meet
                    at_site = e.held | caller_entry
                    acc = at_site if acc is TOP_LOCKS else (acc & at_site)
                if acc != self.entry_locks[qual]:
                    self.entry_locks[qual] = acc
                    changed = True

    # env cache so _record_edge can re-derive arg types without
    # re-walking the function (filled by _analyze_function)
    @property
    def _env_cache(self) -> dict[str, dict[str, set]]:
        cache = getattr(self, "_env_cache_store", None)
        if cache is None:
            cache = {}
            self._env_cache_store = cache
        return cache
