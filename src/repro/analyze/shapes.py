"""Abstract interpretation over NumPy array shapes and dtypes.

The hot-path analyzer (:mod:`repro.analyze.hotpath`) needs to answer,
for an arbitrary expression in a kernel-adjacent function, "is this an
array, what is its (symbolic) shape, and what dtype flows through it?".
This module implements the abstract domain and the transfer functions:

* a **dimension** is a concrete ``int``, a symbolic name (``"F"``,
  ``"d"`` -- program-global dimension vocabulary: ``d`` is *the*
  ambient dimension everywhere in this repository), or ``None``
  (unknown);
* a :class:`ShapeVal` is ``array(dims, dtype)``, ``scalar(dtype)``,
  ``other`` (a known non-array: list, tuple, str, ...) or ``top``;
* dtypes form the chain ``bool < int8 < ... < float64 < object`` with
  ``unknown`` on top; ``Fraction`` concretizes to ``object``, which is
  what the dtype-degradation rule (RPRHOT004) watches for;
* transfer functions cover the vectorized vocabulary the kernels
  actually use: broadcasting arithmetic, ``einsum`` (with definite
  operand-mismatch detection for RPRHOT005), ``matmul``, ``stack`` /
  ``concatenate``, reductions, indexing, and the ``np.*`` constructors.

Kernel boundaries are annotated with structured comments::

    def orient_batch(simplices, queries):
        # repro: shape: simplices=(F,d,d):float64, queries=(Q,d):float64 -> (F,Q):int64

parsed by :func:`parse_annotations`.  Names that are parameters seed
the static environment; *any* annotated name (including intermediates
like ``margins``) is additionally checked dynamically by the runtime
:class:`ShapeRecorder` -- the soundness differential asserts every
recorded ``(shape, dtype)`` fact is admitted by the static abstraction
under a per-event-consistent binding of the symbolic dims.

The abstraction is deliberately conservative: anything not modelled is
``top`` (admits everything).  The one soundness obligation -- pinned by
the Hypothesis suite in ``tests/analyze/test_shapes.py`` -- is that a
*concrete* claim is never wrong: when inference produces fully concrete
dims/dtype for an executed program, they equal NumPy's actual result.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = [
    "Dim",
    "ShapeVal",
    "TOP",
    "OTHER",
    "array_of",
    "scalar_of",
    "join",
    "promote",
    "broadcast",
    "parse_einsum",
    "FnAnnotation",
    "parse_annotations",
    "parse_shape_spec",
    "ShapeEnv",
    "infer_expr",
    "infer_body",
    "ShapeRecorder",
    "recording",
    "observe",
    "admitted",
    "check_event",
]

#: A dimension: concrete, symbolic, or unknown.
Dim = "int | str | None"

# -- dtype chain ---------------------------------------------------------

#: dtype chain, least to greatest; ``promote`` is max along it.
DTYPE_ORDER = (
    "bool", "int8", "int16", "int32", "int64",
    "float32", "float64", "object",
)
_DTYPE_RANK = {name: i for i, name in enumerate(DTYPE_ORDER)}
UNKNOWN_DTYPE = "unknown"


def promote(a: str, b: str) -> str:
    """Join of two dtypes along the chain; ``unknown`` is top."""
    if a == UNKNOWN_DTYPE or b == UNKNOWN_DTYPE:
        return UNKNOWN_DTYPE
    if a not in _DTYPE_RANK or b not in _DTYPE_RANK:
        return UNKNOWN_DTYPE
    return a if _DTYPE_RANK[a] >= _DTYPE_RANK[b] else b


@dataclass(frozen=True)
class ShapeVal:
    """One abstract value.

    ``kind`` is ``"array" | "scalar" | "other" | "top"``.  For arrays,
    ``dims`` is a tuple of :data:`Dim` -- or ``None`` when only the
    dtype is known (unknown rank).
    """

    kind: str
    dims: tuple | None = ()
    dtype: str = UNKNOWN_DTYPE

    @property
    def is_array(self) -> bool:
        return self.kind == "array"

    @property
    def rank(self) -> int | None:
        if self.kind != "array" or self.dims is None:
            return None
        return len(self.dims)

    def format(self) -> str:
        if self.kind == "array":
            if self.dims is None:
                return f"(*?):{self.dtype}"
            inner = ",".join(
                "*" if d is None else str(d) for d in self.dims
            )
            return f"({inner}):{self.dtype}"
        if self.kind == "scalar":
            return f"scalar:{self.dtype}"
        return self.kind


TOP = ShapeVal("top")
OTHER = ShapeVal("other")


def array_of(dims, dtype: str = UNKNOWN_DTYPE) -> ShapeVal:
    return ShapeVal("array", None if dims is None else tuple(dims), dtype)


def scalar_of(dtype: str) -> ShapeVal:
    return ShapeVal("scalar", (), dtype)


def _join_dim(a, b):
    return a if a == b else None


def join(a: ShapeVal, b: ShapeVal) -> ShapeVal:
    """Least upper bound (flow-join of two branches)."""
    if a == b:
        return a
    if a.kind != b.kind:
        return TOP
    if a.kind == "array":
        dt = promote(a.dtype, b.dtype) if a.dtype != b.dtype else a.dtype
        if a.dims is None or b.dims is None or len(a.dims) != len(b.dims):
            return array_of(None, dt)
        return array_of(
            tuple(_join_dim(x, y) for x, y in zip(a.dims, b.dims)), dt
        )
    if a.kind == "scalar":
        return scalar_of(promote(a.dtype, b.dtype))
    return TOP


# -- broadcasting --------------------------------------------------------


def broadcast(a: ShapeVal, b: ShapeVal) -> tuple[ShapeVal, str | None]:
    """Abstract NumPy broadcast of two values.

    Returns ``(result, mismatch)`` where ``mismatch`` is a message when
    the shapes *definitely* cannot broadcast (two unequal concrete dims,
    neither 1) -- the RPRHOT005 trigger.  Symbolic-vs-symbolic and
    symbolic-vs-concrete pairs are never definite mismatches (a symbol
    may be 1).
    """
    if a.kind == "scalar" and b.kind == "scalar":
        return scalar_of(promote(a.dtype, b.dtype)), None
    if a.kind == "scalar" and b.is_array:
        return array_of(b.dims, promote(a.dtype, b.dtype)), None
    if b.kind == "scalar" and a.is_array:
        return array_of(a.dims, promote(a.dtype, b.dtype)), None
    if not (a.is_array and b.is_array):
        return TOP, None
    dt = promote(a.dtype, b.dtype)
    if a.dims is None or b.dims is None:
        return array_of(None, dt), None
    x, y = list(a.dims), list(b.dims)
    out: list = []
    mismatch = None
    while x or y:
        da = x.pop() if x else 1
        db = y.pop() if y else 1
        if da == 1:
            out.append(db)
        elif db == 1:
            out.append(da)
        elif da == db:
            out.append(da)
        elif isinstance(da, int) and isinstance(db, int):
            mismatch = f"cannot broadcast dims {da} and {db}"
            out.append(None)
        else:
            # at least one symbolic/unknown: could still be 1 or equal
            out.append(None)
    out.reverse()
    return array_of(tuple(out), dt), mismatch


# -- einsum --------------------------------------------------------------

_EINSUM_SPEC_RE = re.compile(r"^[a-zA-Z,]+(->[a-zA-Z]*)?$")


def parse_einsum(
    spec: str, operands: list[ShapeVal]
) -> tuple[ShapeVal, list[str]]:
    """Abstract ``np.einsum(spec, *operands)``.

    Unifies each subscript letter against the operand dims; returns the
    output value plus a list of *definite* inconsistencies (rank
    mismatch, or one letter bound to two unequal concrete dims -- the
    RPRHOT005 triggers).  Ellipsis and repeated-index diagonals are not
    modelled (``top``, no mismatch claimed).
    """
    spec = spec.replace(" ", "")
    if not _EINSUM_SPEC_RE.match(spec):
        return TOP, []
    if "->" in spec:
        lhs, out_term = spec.split("->")
    else:
        lhs, out_term = spec, None
    terms = lhs.split(",")
    if len(terms) != len(operands):
        return TOP, [
            f"einsum spec {spec!r} names {len(terms)} operand(s), "
            f"got {len(operands)}"
        ]
    problems: list[str] = []
    binding: dict[str, object] = {}
    dtype = "int64" if operands else UNKNOWN_DTYPE
    for term, op in zip(terms, operands):
        if op.kind == "scalar":
            if term:
                problems.append(
                    f"einsum operand for {term!r} is a scalar"
                )
            dtype = promote(dtype, op.dtype)
            continue
        if not op.is_array:
            dtype = UNKNOWN_DTYPE
            continue
        dtype = promote(dtype, op.dtype)
        if op.dims is None:
            continue
        if len(op.dims) != len(term):
            problems.append(
                f"einsum term {term!r} has rank {len(term)} but operand "
                f"has rank {len(op.dims)}"
            )
            continue
        for letter, dim in zip(term, op.dims):
            if dim is None:
                continue
            prev = binding.get(letter)
            if prev is None:
                binding[letter] = dim
            elif prev != dim:
                if isinstance(prev, int) and isinstance(dim, int):
                    problems.append(
                        f"einsum index {letter!r} bound to both {prev} "
                        f"and {dim}"
                    )
                elif isinstance(dim, int):
                    binding[letter] = dim  # refine symbol -> concrete
    if out_term is None:
        # implicit output: alphabetically sorted non-repeated letters
        counts: dict[str, int] = {}
        for t in terms:
            for letter in t:
                counts[letter] = counts.get(letter, 0) + 1
        out_term = "".join(sorted(c for c, k in counts.items() if k == 1))
    if out_term == "":
        return scalar_of(dtype), problems
    dims = tuple(binding.get(letter) for letter in out_term)
    return array_of(dims, dtype), problems


# -- annotation grammar --------------------------------------------------

_SHAPE_COMMENT_RE = re.compile(
    r"#\s*repro:\s*shape:\s*(?P<body>.+)$", re.IGNORECASE
)
_HOT_ENTRY_RE = re.compile(r"#\s*repro:\s*hot-entry\b", re.IGNORECASE)
_NAME_SHAPE_RE = re.compile(
    r"(?P<name>[A-Za-z_]\w*)\s*=\s*\((?P<dims>[^)]*)\)"
    r"(?::(?P<dtype>[A-Za-z_]\w*))?"
)
_RET_SHAPE_RE = re.compile(
    r"->\s*\((?P<dims>[^)]*)\)(?::(?P<dtype>[A-Za-z_]\w*))?"
)


def parse_shape_spec(dims: str, dtype: str | None) -> ShapeVal:
    """``"F,d,d"`` + ``"float64"`` -> the annotated :class:`ShapeVal`."""
    out: list = []
    for raw in dims.split(","):
        tok = raw.strip()
        if not tok:
            continue
        if tok == "*":
            out.append(None)
        elif tok.lstrip("-").isdigit():
            out.append(int(tok))
        else:
            out.append(tok)
    dt = (dtype or UNKNOWN_DTYPE).lower()
    if dt == "fraction":
        dt = "object"
    if dt not in _DTYPE_RANK and dt != UNKNOWN_DTYPE:
        dt = UNKNOWN_DTYPE
    return array_of(tuple(out), dt)


@dataclass
class FnAnnotation:
    """Shape facts attached to one function by its boundary comment."""

    qualname: str = ""
    #: annotated name -> abstract value (params seed the static env;
    #: every name is checked by the dynamic recorder)
    shapes: dict[str, ShapeVal] = field(default_factory=dict)
    returns: ShapeVal | None = None
    hot_entry: bool = False
    line: int = 0


def _comment_lines(source: str):
    """(line, comment-text) for every real COMMENT token."""
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        return [
            (t.start[0], t.string)
            for t in tokens
            if t.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return []


def parse_annotations(source: str, tree: ast.Module) -> dict[int, FnAnnotation]:
    """Shape/hot-entry comments of one file, keyed by the ``def`` line
    of the function they attach to.

    A comment attaches to the innermost function whose body contains
    its line, or whose signature region (``def`` line through the first
    body statement) covers it -- so both styles work::

        def f(x):  # repro: shape: x=(N,d):float64
        def g(y):
            # repro: shape: y=(N,):int64
    """
    comments = _comment_lines(source)
    if not comments:
        return {}
    funcs: list[ast.FunctionDef | ast.AsyncFunctionDef] = [
        n for n in ast.walk(tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]

    def owner(line: int):
        best = None
        for fn in funcs:
            end = getattr(fn, "end_lineno", fn.lineno) or fn.lineno
            if fn.lineno <= line <= end:
                if best is None or fn.lineno > best.lineno:
                    best = fn  # innermost: latest def line containing it
        return best

    out: dict[int, FnAnnotation] = {}
    for line, text in comments:
        is_shape = _SHAPE_COMMENT_RE.search(text)
        is_entry = _HOT_ENTRY_RE.search(text)
        if not is_shape and not is_entry:
            continue
        fn = owner(line)
        if fn is None:
            continue
        ann = out.setdefault(fn.lineno, FnAnnotation(line=fn.lineno))
        if is_entry:
            ann.hot_entry = True
        if is_shape:
            body = is_shape.group("body")
            ret = _RET_SHAPE_RE.search(body)
            if ret:
                ann.returns = parse_shape_spec(
                    ret.group("dims"), ret.group("dtype")
                )
                body = body[: ret.start()]
            for m in _NAME_SHAPE_RE.finditer(body):
                ann.shapes[m.group("name")] = parse_shape_spec(
                    m.group("dims"), m.group("dtype")
                )
    return out


# -- the abstract interpreter -------------------------------------------

#: elementwise passthrough functions/methods: shape preserved
_ELEMENTWISE = {
    "abs", "sqrt", "exp", "log", "log2", "sin", "cos", "sign",
    "negative", "isfinite", "isnan", "floor", "ceil", "round",
    "ascontiguousarray", "copy",
}
_BOOL_ELEMENTWISE = {"isfinite", "isnan", "logical_not"}
_REDUCTIONS = {"sum", "prod", "max", "min", "mean", "all", "any", "argmax",
               "argmin"}
_CONSTRUCTORS = {"zeros", "ones", "empty", "full"}


class ShapeEnv:
    """A per-function variable environment (flow-joining on rebind is
    the caller's job; :func:`infer_body` does a single forward pass,
    which is exact for the straight-line kernel code this targets and
    conservative elsewhere)."""

    def __init__(self, annotations: "dict[str, FnAnnotation] | None" = None):
        self.vars: dict[str, ShapeVal] = {}
        #: qualname-agnostic map: bare function name -> its annotation
        #: (used to type calls to annotated kernels)
        self.fn_annotations = annotations or {}
        #: definite inconsistencies found while inferring (RPRHOT005)
        self.mismatches: list[tuple[int, int, str]] = []

    def get(self, name: str) -> ShapeVal:
        return self.vars.get(name, TOP)

    def set(self, name: str, val: ShapeVal) -> None:
        self.vars[name] = val


def _const_val(node: ast.expr):
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _const_val(node.operand)
        if isinstance(inner, (int, float)):
            return -inner
    return None


def _dtype_from_node(node: ast.expr | None) -> str:
    """Map a ``dtype=...`` argument AST to a dtype name."""
    if node is None:
        return UNKNOWN_DTYPE
    name = None
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Constant) and isinstance(node.value, str):
        name = node.value
    if name is None:
        return UNKNOWN_DTYPE
    name = name.lower()
    aliases = {"float": "float64", "int": "int64", "bool_": "bool",
               "double": "float64", "object_": "object"}
    name = aliases.get(name, name)
    return name if name in _DTYPE_RANK else UNKNOWN_DTYPE


def _dims_from_shape_arg(node: ast.expr, env: ShapeEnv):
    """Dims of a shape argument: int literal, tuple/list of ints/exprs."""
    v = _const_val(node)
    if isinstance(v, int):
        return (v,)
    if isinstance(node, (ast.Tuple, ast.List)):
        dims = []
        for e in node.elts:
            ev = _const_val(e)
            dims.append(ev if isinstance(ev, int) else None)
        return tuple(dims)
    return None


def _python_scalar(value) -> ShapeVal:
    if isinstance(value, bool):
        return scalar_of("bool")
    if isinstance(value, int):
        return scalar_of("int64")
    if isinstance(value, float):
        return scalar_of("float64")
    return OTHER


def _literal_array(node: ast.expr, env: ShapeEnv) -> ShapeVal:
    """``np.array([...])`` literal: infer dims/dtype from the nesting."""
    if isinstance(node, (ast.List, ast.Tuple)):
        elts = node.elts
        if not elts:
            return array_of((0,), UNKNOWN_DTYPE)
        inner = [_literal_array(e, env) for e in elts]
        first = inner[0]
        dt = UNKNOWN_DTYPE
        for v in inner:
            if v.kind in ("scalar", "array"):
                dt = v.dtype if dt == UNKNOWN_DTYPE else promote(dt, v.dtype)
            else:
                dt = UNKNOWN_DTYPE
        if all(v.kind == "scalar" for v in inner):
            return array_of((len(elts),), dt)
        if first.is_array and first.dims is not None and all(
            v.is_array and v.dims == first.dims for v in inner
        ):
            return array_of((len(elts),) + first.dims, dt)
        return array_of(None, dt)
    val = infer_expr(node, env)
    if val.kind in ("scalar", "array"):
        return val
    cv = _const_val(node)
    if cv is not None:
        return _python_scalar(cv)
    return TOP


def _subscript(base: ShapeVal, index: ast.expr, env: ShapeEnv) -> ShapeVal:
    if not base.is_array:
        return TOP
    if base.dims is None:
        return array_of(None, base.dtype)
    items = list(index.elts) if isinstance(index, ast.Tuple) else [index]
    dims = list(base.dims)
    out: list = []
    pos = 0
    for it in items:
        if isinstance(it, ast.Slice):
            if pos >= len(dims):
                return TOP
            full = it.lower is None and it.upper is None and it.step is None
            out.append(dims[pos] if full else None)
            pos += 1
        elif isinstance(it, ast.Constant) and it.value is None:
            out.append(1)  # np.newaxis
        elif _const_val(it) is not None or (
            infer_expr(it, env).kind == "scalar"
        ):
            if pos >= len(dims):
                return TOP
            pos += 1  # integer index: dim dropped
        else:
            iv = infer_expr(it, env)
            if iv.is_array and iv.dims is not None and pos < len(dims):
                if iv.dtype == "bool":
                    # boolean mask collapses the masked dims to one
                    take = len(iv.dims)
                    if pos + take > len(dims):
                        return TOP
                    out.append(None)
                    pos += take
                else:
                    out.extend(iv.dims)
                    pos += 1
            else:
                return array_of(None, base.dtype)
    out.extend(dims[pos:])
    return array_of(tuple(out), base.dtype)


def _np_call(fname: str, node: ast.Call, env: ShapeEnv) -> ShapeVal | None:
    """Transfer functions for ``np.<fname>(...)``; None == not modelled."""
    args = node.args
    kw = {k.arg: k.value for k in node.keywords if k.arg}

    def arg_val(i: int) -> ShapeVal:
        return infer_expr(args[i], env) if len(args) > i else TOP

    if fname in _CONSTRUCTORS:
        dims = _dims_from_shape_arg(args[0], env) if args else None
        dt = _dtype_from_node(kw.get("dtype") or (args[1] if len(args) > 1 and fname != "full" else None))
        if fname == "zeros" or fname == "empty" or fname == "ones":
            dt = dt if dt != UNKNOWN_DTYPE else "float64"
        if fname == "full" and len(args) > 1:
            fill = infer_expr(args[1], env)
            if dt == UNKNOWN_DTYPE and fill.kind == "scalar":
                dt = fill.dtype
        return array_of(dims, dt)
    if fname == "arange":
        n = _const_val(args[0]) if args else None
        dt = _dtype_from_node(kw.get("dtype"))
        if dt == UNKNOWN_DTYPE:
            vals = [infer_expr(a, env) for a in args]
            dt = "int64"
            for v in vals:
                if v.kind == "scalar" and v.dtype == "float64":
                    dt = "float64"
        return array_of((n if isinstance(n, int) and len(args) == 1 else None,), dt)
    if fname in ("array", "asarray", "asanyarray", "atleast_1d"):
        dt = _dtype_from_node(kw.get("dtype") or (args[1] if len(args) > 1 else None))
        if not args:
            return TOP
        base = _literal_array(args[0], env)
        if base.kind == "scalar":
            base = array_of((), base.dtype) if fname != "asarray" else base
            # np.asarray(scalar) is a 0-d array; treat as scalar-ish
            base = scalar_of(base.dtype)
        if dt != UNKNOWN_DTYPE:
            if base.is_array:
                return array_of(base.dims, dt)
            if base.kind == "scalar":
                return scalar_of(dt)
            return array_of(None, dt)
        return base if base.kind != "top" else TOP
    if fname == "atleast_2d":
        if not args:
            return TOP
        v = infer_expr(args[0], env)
        if v.is_array and v.dims is not None:
            if len(v.dims) >= 2:
                return v
            if len(v.dims) == 1:
                return array_of((1,) + v.dims, v.dtype)
            return array_of((1, 1), v.dtype)
        if v.kind == "scalar":
            return array_of((1, 1), v.dtype)
        return array_of(None, v.dtype if v.is_array else UNKNOWN_DTYPE)
    if fname in ("ascontiguousarray", "copy"):
        return arg_val(0)
    if fname in _ELEMENTWISE or fname in _BOOL_ELEMENTWISE:
        v = arg_val(0)
        dt = "bool" if fname in _BOOL_ELEMENTWISE else v.dtype
        if fname == "sqrt" and v.dtype not in ("object", UNKNOWN_DTYPE):
            dt = "float64"
        if v.is_array:
            return array_of(v.dims, dt)
        if v.kind == "scalar":
            return scalar_of(dt)
        return TOP
    if fname == "einsum":
        if args and isinstance(args[0], ast.Constant) and isinstance(args[0].value, str):
            ops = [infer_expr(a, env) for a in args[1:]]
            out, problems = parse_einsum(args[0].value, ops)
            for p in problems:
                env.mismatches.append((node.lineno, node.col_offset, p))
            return out
        return TOP
    if fname in ("matmul", "dot"):
        a, b = arg_val(0), arg_val(1)
        return _matmul(a, b, env, node)
    if fname in ("stack", "vstack", "hstack"):
        if not args:
            return TOP
        seq = args[0]
        axis = _const_val(kw.get("axis")) if "axis" in kw else (
            _const_val(args[1]) if len(args) > 1 else 0
        )
        if isinstance(seq, (ast.List, ast.Tuple)):
            vals = [infer_expr(e, env) for e in seq.elts]
            if fname == "stack" and vals and all(v.is_array for v in vals):
                base = vals[0]
                for v in vals[1:]:
                    base = join(base, v)
                if base.is_array and base.dims is not None and isinstance(axis, int) \
                        and 0 <= axis <= len(base.dims):
                    dims = list(base.dims)
                    dims.insert(axis, len(vals))
                    return array_of(tuple(dims), base.dtype)
                return array_of(None, base.dtype if base.is_array else UNKNOWN_DTYPE)
            if fname == "stack" and vals and all(v.kind == "scalar" for v in vals):
                dt = UNKNOWN_DTYPE
                for v in vals:
                    dt = v.dtype if dt == UNKNOWN_DTYPE else promote(dt, v.dtype)
                return array_of((len(vals),), dt)
        dt = UNKNOWN_DTYPE
        return array_of(None, dt)
    if fname == "concatenate":
        if not args or not isinstance(args[0], (ast.List, ast.Tuple)):
            return TOP
        vals = [infer_expr(e, env) for e in args[0].elts]
        axis = _const_val(kw.get("axis")) if "axis" in kw else (
            _const_val(args[1]) if len(args) > 1 else 0
        )
        if not vals or not all(v.is_array for v in vals):
            return TOP
        dt = vals[0].dtype
        for v in vals[1:]:
            dt = promote(dt, v.dtype)
        if any(v.dims is None for v in vals):
            return array_of(None, dt)
        rank = len(vals[0].dims)
        if any(len(v.dims) != rank for v in vals):
            env.mismatches.append((
                node.lineno, node.col_offset,
                "concatenate of arrays with different ranks",
            ))
            return array_of(None, dt)
        if not isinstance(axis, int) or not (-rank <= axis < rank):
            return array_of(None, dt)
        axis %= rank
        dims = []
        for i in range(rank):
            if i == axis:
                sizes = [v.dims[i] for v in vals]
                dims.append(sum(sizes) if all(isinstance(s, int) for s in sizes) else None)
            else:
                d0 = vals[0].dims[i]
                for v in vals[1:]:
                    d0 = _join_dim(d0, v.dims[i])
                dims.append(d0)
        return array_of(tuple(dims), dt)
    if fname == "nonzero":
        return OTHER  # tuple of index arrays; subscripting yields (*,)
    if fname == "searchsorted":
        v = arg_val(1)
        if v.is_array:
            return array_of(v.dims, "int64")
        return scalar_of("int64")
    if fname == "where":
        if len(args) == 3:
            c, a, b = (infer_expr(x, env) for x in args)
            ab, m1 = broadcast(a, b)
            out, m2 = broadcast(c, ab)
            for m in (m1, m2):
                if m:
                    env.mismatches.append((node.lineno, node.col_offset, m))
            if out.is_array:
                return array_of(out.dims, ab.dtype if ab.is_array or ab.kind == "scalar" else UNKNOWN_DTYPE)
            return out
        return OTHER
    if fname == "repeat":
        return array_of((None,) if arg_val(0).rank in (1, None) else None,
                        arg_val(0).dtype if arg_val(0).is_array else UNKNOWN_DTYPE)
    if fname in _REDUCTIONS:
        return _reduction(fname, arg_val(0), node, env)
    if fname == "cross":
        a, b = arg_val(0), arg_val(1)
        out, m = broadcast(a, b)
        if m:
            env.mismatches.append((node.lineno, node.col_offset, m))
        return out
    return None


def _matmul(a: ShapeVal, b: ShapeVal, env: ShapeEnv, node: ast.AST) -> ShapeVal:
    if not (a.is_array and b.is_array):
        return TOP
    dt = promote(a.dtype, b.dtype)
    if a.dims is None or b.dims is None:
        return array_of(None, dt)
    if len(a.dims) == 2 and len(b.dims) == 2:
        k1, k2 = a.dims[1], b.dims[0]
        if k1 is not None and k2 is not None and k1 != k2 \
                and isinstance(k1, int) and isinstance(k2, int):
            env.mismatches.append((
                getattr(node, "lineno", 0), getattr(node, "col_offset", 0),
                f"matmul inner dims {k1} and {k2} differ",
            ))
        return array_of((a.dims[0], b.dims[1]), dt)
    if len(a.dims) == 1 and len(b.dims) == 2:
        return array_of((b.dims[1],), dt)
    if len(a.dims) == 2 and len(b.dims) == 1:
        return array_of((a.dims[0],), dt)
    if len(a.dims) == 1 and len(b.dims) == 1:
        return scalar_of(dt)
    return array_of(None, dt)


def _reduction(fname: str, v: ShapeVal, node: ast.Call, env: ShapeEnv) -> ShapeVal:
    kw = {k.arg: k.value for k in node.keywords if k.arg}
    if "keepdims" in kw and _const_val(kw["keepdims"]) is not False:
        if v.is_array:
            return array_of(None, v.dtype)
        return TOP
    dt = v.dtype if v.kind in ("array", "scalar") else UNKNOWN_DTYPE
    if fname in ("argmax", "argmin"):
        dt = "int64"
    if fname in ("all", "any"):
        dt = "bool"
    # numpy promotes bool sums to int64
    if fname in ("sum", "prod") and dt == "bool":
        dt = "int64"
    if fname == "mean" and dt not in ("object", UNKNOWN_DTYPE):
        dt = "float64"
    axis_node = kw.get("axis")
    if axis_node is None and len(node.args) > 1 and isinstance(node.func, ast.Attribute) is False:
        axis_node = node.args[1]
    if axis_node is None and isinstance(node.func, ast.Attribute) and len(node.args) > 0:
        axis_node = node.args[0]
    if axis_node is None:
        return scalar_of(dt)
    axis = _const_val(axis_node)
    if not v.is_array or v.dims is None:
        return array_of(None, dt)
    if isinstance(axis, int) and -len(v.dims) <= axis < len(v.dims):
        dims = list(v.dims)
        del dims[axis % len(v.dims)]
        if not dims:
            return scalar_of(dt)
        return array_of(tuple(dims), dt)
    return array_of(None, dt)


_CMP_DTYPE = "bool"


def infer_expr(node: ast.expr, env: ShapeEnv) -> ShapeVal:
    """Abstract value of one expression under ``env``.  Total: every
    unmodelled construct is ``TOP``."""
    if isinstance(node, ast.Constant):
        return _python_scalar(node.value)
    if isinstance(node, ast.Name):
        return env.get(node.id)
    if isinstance(node, ast.BinOp):
        a = infer_expr(node.left, env)
        b = infer_expr(node.right, env)
        if isinstance(node.op, ast.MatMult):
            return _matmul(a, b, env, node)
        out, mismatch = broadcast(a, b)
        if mismatch:
            env.mismatches.append((node.lineno, node.col_offset, mismatch))
        if isinstance(node.op, ast.Div) and out.kind in ("array", "scalar") \
                and out.dtype not in ("object", UNKNOWN_DTYPE):
            out = array_of(out.dims, promote(out.dtype, "float64")) \
                if out.is_array else scalar_of(promote(out.dtype, "float64"))
        elif out.kind in ("array", "scalar") and out.dtype == "bool" \
                and not isinstance(node.op, (ast.BitAnd, ast.BitOr, ast.BitXor)):
            # bool arithmetic promotes to int64 in numpy (e.g. mask + mask)
            out = array_of(out.dims, "int64") if out.is_array else scalar_of("int64")
        return out
    if isinstance(node, ast.UnaryOp):
        v = infer_expr(node.operand, env)
        if isinstance(node.op, ast.Not):
            return scalar_of("bool")
        if isinstance(node.op, ast.Invert) and v.kind in ("array", "scalar"):
            return v
        if v.kind in ("array", "scalar"):
            if v.dtype == "bool" and isinstance(node.op, (ast.USub, ast.UAdd)):
                return array_of(v.dims, "int64") if v.is_array else scalar_of("int64")
            return v
        return TOP
    if isinstance(node, ast.Compare):
        vals = [infer_expr(node.left, env)] + [
            infer_expr(c, env) for c in node.comparators
        ]
        out = vals[0]
        for v in vals[1:]:
            res, mismatch = broadcast(out, v)
            if mismatch:
                env.mismatches.append((node.lineno, node.col_offset, mismatch))
            out = res
        if out.is_array:
            return array_of(out.dims, _CMP_DTYPE)
        return scalar_of(_CMP_DTYPE)
    if isinstance(node, ast.BoolOp):
        out = infer_expr(node.values[0], env)
        for v in node.values[1:]:
            out = join(out, infer_expr(v, env))
        return out
    if isinstance(node, ast.IfExp):
        return join(infer_expr(node.body, env), infer_expr(node.orelse, env))
    if isinstance(node, ast.Subscript):
        base = infer_expr(node.value, env)
        if base.kind == "other":
            # tuple-of-arrays (np.nonzero); indexing yields a 1-d index array
            if isinstance(node.value, ast.Call):
                f = node.value.func
                if isinstance(f, ast.Attribute) and f.attr == "nonzero":
                    return array_of((None,), "int64")
            return TOP
        return _subscript(base, node.slice, env)
    if isinstance(node, ast.Attribute):
        base = infer_expr(node.value, env)
        if node.attr == "T" and base.is_array:
            dims = None if base.dims is None else tuple(reversed(base.dims))
            return array_of(dims, base.dtype)
        if node.attr in ("size", "ndim", "nbytes") and base.is_array:
            return scalar_of("int64")
        if node.attr in ("shape", "dtype", "flags"):
            return OTHER
        return TOP
    if isinstance(node, ast.Call):
        return _infer_call(node, env)
    if isinstance(node, (ast.List, ast.Tuple, ast.Set, ast.Dict,
                         ast.ListComp, ast.SetComp, ast.DictComp,
                         ast.GeneratorExp, ast.JoinedStr)):
        return OTHER
    if isinstance(node, ast.Starred):
        return infer_expr(node.value, env)
    return TOP


def _infer_call(node: ast.Call, env: ShapeEnv) -> ShapeVal:
    f = node.func
    # np.<fn>(...) -- accept any module alias whose attr we model
    if isinstance(f, ast.Attribute):
        base = infer_expr(f.value, env)
        if isinstance(f.value, ast.Name) and f.value.id in ("np", "numpy"):
            out = _np_call(f.attr, node, env)
            if out is not None:
                return out
            if f.attr == "linalg":
                return TOP
            return TOP
        # method calls on arrays
        if base.is_array:
            if f.attr in _REDUCTIONS:
                return _reduction(f.attr, base, node, env)
            if f.attr == "astype":
                dt = _dtype_from_node(node.args[0]) if node.args else UNKNOWN_DTYPE
                return array_of(base.dims, dt)
            if f.attr in ("copy", "ravel", "flatten"):
                if f.attr == "copy":
                    return base
                if base.dims is not None and len(base.dims) == 1:
                    return base
                return array_of((None,), base.dtype)
            if f.attr == "reshape":
                dims = _dims_from_shape_arg(
                    node.args[0] if len(node.args) == 1 else ast.Tuple(
                        elts=list(node.args), ctx=ast.Load()
                    ),
                    env,
                ) if node.args else None
                return array_of(dims, base.dtype)
            if f.attr == "tolist":
                return OTHER
        if f.attr == "nonzero":
            return OTHER
        # call to an annotated kernel method
        ann = env.fn_annotations.get(f.attr)
        if ann is not None and ann.returns is not None:
            return ann.returns
        return TOP
    if isinstance(f, ast.Name):
        if f.id == "len":
            return scalar_of("int64")
        if f.id in ("int", "bool", "float"):
            return scalar_of({"int": "int64", "bool": "bool", "float": "float64"}[f.id])
        if f.id == "Fraction":
            return scalar_of("object")
        if f.id in ("range", "enumerate", "zip", "sorted", "list", "tuple",
                    "dict", "set"):
            return OTHER
        ann = env.fn_annotations.get(f.id)
        if ann is not None and ann.returns is not None:
            return ann.returns
        return TOP
    return TOP


def infer_body(
    func: "ast.FunctionDef | ast.AsyncFunctionDef",
    env: ShapeEnv,
) -> ShapeEnv:
    """One forward pass over the function body, binding assignment
    targets (and ``for`` targets to ``top``) in source order.  Nested
    defs are skipped -- they are analysed as their own functions."""

    def bind_target(t: ast.expr, val: ShapeVal) -> None:
        if isinstance(t, ast.Name):
            env.set(t.id, val)
        elif isinstance(t, (ast.Tuple, ast.List)):
            for e in t.elts:
                bind_target(e, TOP)

    def walk(stmts) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(stmt, ast.Assign):
                val = infer_expr(stmt.value, env)
                for t in stmt.targets:
                    bind_target(t, val)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                bind_target(stmt.target, infer_expr(stmt.value, env))
            elif isinstance(stmt, ast.AugAssign):
                if isinstance(stmt.target, ast.Name):
                    cur = env.get(stmt.target.id)
                    rhs = infer_expr(stmt.value, env)
                    out, mismatch = broadcast(cur, rhs)
                    if mismatch:
                        env.mismatches.append(
                            (stmt.lineno, stmt.col_offset, mismatch)
                        )
                    env.set(stmt.target.id, out if cur.is_array else TOP)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                it = infer_expr(stmt.iter, env)
                if it.is_array and it.dims is not None and len(it.dims) >= 2:
                    bind_target(stmt.target, array_of(it.dims[1:], it.dtype))
                elif it.is_array and (it.dims is None or len(it.dims) == 1):
                    bind_target(stmt.target,
                                scalar_of(it.dtype) if it.rank == 1
                                else array_of(None, it.dtype))
                else:
                    bind_target(stmt.target, TOP)
                walk(stmt.body)
                walk(stmt.orelse)
            elif isinstance(stmt, (ast.If, ast.While)):
                infer_expr(stmt.test, env)
                walk(stmt.body)
                walk(stmt.orelse)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                walk(stmt.body)
            elif isinstance(stmt, ast.Try):
                walk(stmt.body)
                for h in stmt.handlers:
                    walk(h.body)
                walk(stmt.orelse)
                walk(stmt.finalbody)
            elif isinstance(stmt, (ast.Expr, ast.Return)):
                if stmt.value is not None:
                    infer_expr(stmt.value, env)
    walk(func.body)
    return env


# -- runtime shape recorder ---------------------------------------------


class ShapeRecorder:
    """Collects concrete ``(shape, dtype)`` facts from instrumented
    kernel boundaries.  One *event* is one hook firing: a dict of
    ``name -> (shape tuple, dtype string)`` for every ndarray the hook
    named, so symbolic dims can be checked for *joint* consistency
    within the event (``F`` and ``d`` must agree across ``simplices``,
    ``normals``, ``offsets`` of the same call)."""

    def __init__(self) -> None:
        self.events: list[tuple[str, dict[str, tuple[tuple, str]]]] = []

    def record(self, qualname: str, named: dict) -> None:
        facts = {}
        for name, v in named.items():
            shape = getattr(v, "shape", None)
            dtype = getattr(v, "dtype", None)
            if shape is None or dtype is None:
                continue
            facts[name] = (tuple(int(s) for s in shape), str(dtype))
        if facts:
            self.events.append((qualname, facts))


_ACTIVE: ShapeRecorder | None = None


class recording:
    """Context manager: route :func:`observe` hooks into ``recorder``."""

    def __init__(self, recorder: ShapeRecorder):
        self.recorder = recorder

    def __enter__(self) -> ShapeRecorder:
        global _ACTIVE
        self._prev = _ACTIVE
        _ACTIVE = self.recorder
        return self.recorder

    def __exit__(self, *exc) -> None:
        global _ACTIVE
        _ACTIVE = self._prev


def observe(qualname: str, **named) -> None:
    """The hook the hull/kernel hot paths call.  A no-op (one global
    load and a falsy check) unless a :class:`recording` block is
    active, so the instrumented paths stay hot-loop safe."""
    if _ACTIVE is None:
        return
    _ACTIVE.record(qualname, named)


# -- concretization / admission -----------------------------------------


def admitted(
    val: ShapeVal,
    shape: tuple,
    dtype: str,
    binding: dict | None = None,
) -> str | None:
    """Does the abstraction ``val`` admit the concrete ``(shape,
    dtype)`` fact?  Returns None on admission, else a human-readable
    reason.  ``binding`` (symbol -> int) is read *and extended*, so a
    sequence of calls checks joint consistency across one event."""
    if val.kind == "top":
        return None
    if val.kind == "other":
        return "annotated non-array saw an ndarray"
    if val.kind == "scalar":
        if shape != ():
            return f"scalar abstraction saw shape {shape}"
        return _admit_dtype(val.dtype, dtype)
    if val.dims is None:
        return _admit_dtype(val.dtype, dtype)
    if len(val.dims) != len(shape):
        return (
            f"rank mismatch: abstraction {val.format()} vs concrete "
            f"shape {shape}"
        )
    binding = binding if binding is not None else {}
    for ab, conc in zip(val.dims, shape):
        if ab is None:
            continue
        if isinstance(ab, int):
            if ab != conc:
                return (
                    f"dim mismatch: abstraction {val.format()} vs "
                    f"concrete shape {shape}"
                )
        else:  # symbolic
            bound = binding.get(ab)
            if bound is None:
                binding[ab] = conc
            elif bound != conc:
                return (
                    f"symbol {ab!r} bound to {bound} but saw {conc} "
                    f"(abstraction {val.format()}, shape {shape})"
                )
    return _admit_dtype(val.dtype, dtype)


def _admit_dtype(abstract: str, concrete: str) -> str | None:
    if abstract == UNKNOWN_DTYPE:
        return None
    if abstract == concrete:
        return None
    return f"dtype mismatch: abstraction {abstract} vs concrete {concrete}"


def check_event(
    annotation: FnAnnotation,
    facts: dict[str, tuple[tuple, str]],
) -> list[str]:
    """Check one recorded event against one function annotation with a
    shared symbol binding; returns the violations (empty == sound)."""
    binding: dict = {}
    problems = []
    for name, (shape, dtype) in sorted(facts.items()):
        val = annotation.shapes.get(name)
        if val is None:
            continue  # hook recorded something the annotation doesn't pin
        reason = admitted(val, shape, dtype, binding)
        if reason is not None:
            problems.append(f"{name}: {reason}")
    return problems
