"""``python -m repro`` entry point."""

from .cli import main

main()
