"""Oriented hyperplanes and vectorized visibility tests.

A facet of a d-dimensional hull is carried by the hyperplane through its
``d`` defining points, oriented so that the hull interior is on the
*negative* side.  A point is **visible** from the facet iff it lies
strictly on the positive side (the open outer half-space) -- exactly the
conflict relation of the paper's configuration space (Table 1).

The hot loop of every hull algorithm is "filter a candidate array down
to the visible points", so :meth:`Hyperplane.visible_mask` is fully
vectorized: one matrix-vector product per facet plus an exact rational
recheck only for candidates whose float margin is inside the error
envelope.

Correctness of the filter rests on the envelope dominating *both*
rounding sources: the dot product itself, and the error of the
floating-point cofactor normal (whose components are (d-1)x(d-1)
determinants, bounded Hadamard-style by the product ``H`` of the
edge-row norms):

    |computed margin - n_exact . (q - p0)|
        <= 16 d eps (d^2 H + |n|_1 + 1) * (1 + |p0|_inf + |q|_inf).

An earlier version used only the dot-product term; an ill-conditioned
moment-curve (cyclic polytope) workload silently corrupted hulls -- the
regression tests live in ``tests/geometry/test_hyperplane.py`` and
``tests/hull/test_moment_curve.py``.  When even the orientation
reference point falls inside the envelope, the float normal carries no
usable information and the plane switches to *always-exact* mode: every
query is decided rationally.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

import numpy as np

from .linalg import cofactor_normal
from .predicates import STATS, orient_exact

__all__ = ["Hyperplane", "exact_mode"]

_EPS = float(np.finfo(np.float64).eps)

# When set, Hyperplane.through() skips the float-certain fast path and
# builds every plane in always-exact mode.  This is the middle rung of
# the robust_hull escalation ladder: if a hull fails with filtered float
# predicates, retry with every decision made rationally before resorting
# to joggling the input.
_FORCE_EXACT = False


@contextlib.contextmanager
def exact_mode() -> Iterator[None]:
    """Force every :meth:`Hyperplane.through` call in the block to build
    an always-exact plane (all visibility decided rationally).

    Not thread-safe with respect to *entering/leaving* the mode: flip it
    only from the orchestrating thread, before workers start building
    planes.  Planes built inside the block stay exact after it exits.
    """
    global _FORCE_EXACT
    prev = _FORCE_EXACT
    _FORCE_EXACT = True
    try:
        yield
    finally:
        _FORCE_EXACT = prev


class Hyperplane:
    """Oriented affine hyperplane ``{x : normal . x = offset}`` in R^d.

    ``normal`` points towards the *visible* (outside) half-space (when
    the float fast path is live).  ``base_points`` are the defining
    points; ``ref_point`` the interior reference fixed at construction
    -- together they let the exact fallback re-derive visibility from
    original coordinates.  ``always_exact`` marks planes whose float
    normal is untrustworthy.
    """

    __slots__ = (
        "normal",
        "offset",
        "base_points",
        "ref_point",
        "err_scale",
        "err_base",
        "always_exact",
        "_vis_sign",
    )

    def __init__(self, normal, offset, base_points, ref_point,
                 err_scale, err_base, always_exact, vis_sign=None):
        self.normal = normal
        self.offset = offset
        self.base_points = base_points
        self.ref_point = ref_point
        self.err_scale = err_scale
        self.err_base = err_base
        self.always_exact = always_exact
        self._vis_sign = vis_sign

    @staticmethod
    def through(points: np.ndarray, below: np.ndarray) -> "Hyperplane":
        """Hyperplane through the rows of ``points`` (a ``(d, d)``
        array), oriented so that the reference point ``below`` is on the
        negative (invisible) side.

        Raises ``ValueError`` if ``below`` lies exactly on the plane
        (the caller must pick a strictly interior reference).
        """
        points = np.asarray(points, dtype=np.float64)
        below = np.asarray(below, dtype=np.float64)
        d = points.shape[1]
        normal = cofactor_normal(points)
        offset = float(normal @ points[0])
        edges = points[1:] - points[0]
        row_norms = np.sqrt((edges * edges).sum(axis=1))
        hadamard = float(np.prod(row_norms)) if row_norms.size else 1.0
        n1 = float(np.abs(normal).sum())
        err_scale = 16.0 * d * _EPS * (d * d * hadamard + n1 + 1.0)
        err_base = 1.0 + float(np.abs(points[0]).max(initial=0.0))

        margin_ref = float(normal @ below) - offset
        env_ref = err_scale * (err_base + float(np.abs(below).max(initial=0.0)))
        if not _FORCE_EXACT and abs(margin_ref) > env_ref:
            # Float-certain: orient the normal so the reference is below.
            if margin_ref > 0:
                normal, offset = -normal, -offset
            return Hyperplane(
                normal=normal, offset=offset, base_points=points,
                ref_point=below, err_scale=err_scale, err_base=err_base,
                always_exact=False,
            )
        # The reference sits inside the envelope: the float normal is
        # not trustworthy for any decision near this plane.
        s_ref = orient_exact(points, below)
        if s_ref == 0:
            raise ValueError("orientation reference lies on the hyperplane")
        return Hyperplane(
            normal=normal, offset=offset, base_points=points,
            ref_point=below, err_scale=err_scale, err_base=err_base,
            always_exact=True, vis_sign=-s_ref,
        )

    # -- exact orientation -------------------------------------------------

    @property
    def vis_sign(self) -> int:
        """The :func:`orient_exact` value that means "visible", derived
        lazily from the reference point (which is strictly interior)."""
        if self._vis_sign is None:
            s_ref = orient_exact(self.base_points, self.ref_point)
            if s_ref == 0:  # pragma: no cover - through() guarantees otherwise
                raise ValueError("orientation reference lies on the hyperplane")
            self._vis_sign = -s_ref
        return self._vis_sign

    def _side_exact(self, q) -> int:
        s = orient_exact(self.base_points, q)
        if s == 0:
            return 0
        return 1 if s == self.vis_sign else -1

    # -- scalar predicate ---------------------------------------------------

    def side(self, q) -> int:
        """Sign of the side of ``q``: +1 visible, -1 invisible, 0 on the
        plane (decided exactly when the float margin is ambiguous)."""
        q = np.asarray(q, dtype=np.float64)
        if self.always_exact:
            return self._side_exact(q)
        margin = float(self.normal @ q) - self.offset
        env = self.err_scale * (self.err_base + float(np.abs(q).max(initial=0.0)))
        STATS.float_calls += 1
        if margin > env:
            return 1
        if margin < -env:
            return -1
        return self._side_exact(q)

    def is_visible(self, q) -> bool:
        """Strict visibility: ``q`` in the open outer half-space."""
        return self.side(q) > 0

    # -- vectorized predicate ---------------------------------------------

    def margins(self, pts: np.ndarray) -> np.ndarray:
        """Signed float margins (positive = visible side) for a batch.
        Meaningful only when the fast path is live (``always_exact`` is
        False); magnitudes below the envelope are noise either way."""
        return pts @ self.normal - self.offset

    def visible_mask(self, pts: np.ndarray) -> np.ndarray:
        """Boolean mask of strictly visible points among ``pts``.

        Vectorized fast path; candidates within the error envelope are
        re-decided exactly one by one (rare for generic float inputs,
        common for engineered degenerate or ill-conditioned inputs).
        """
        pts = np.asarray(pts, dtype=np.float64)
        if pts.size == 0:
            return np.zeros(0, dtype=bool)
        if self.always_exact:
            return np.array([self._side_exact(q) > 0 for q in pts], dtype=bool)
        margins = self.margins(pts)
        env = self.err_scale * (self.err_base + np.abs(pts).max(axis=1))
        mask = margins > env
        uncertain = np.abs(margins) <= env
        STATS.float_calls += int(pts.shape[0])
        if uncertain.any():
            for i in np.nonzero(uncertain)[0]:
                mask[i] = self._side_exact(pts[i]) > 0
        return mask
