"""Oriented hyperplanes and vectorized visibility tests.

A facet of a d-dimensional hull is carried by the hyperplane through its
``d`` defining points, oriented so that the hull interior is on the
*negative* side.  A point is **visible** from the facet iff it lies
strictly on the positive side (the open outer half-space) -- exactly the
conflict relation of the paper's configuration space (Table 1).

The hot loop of every hull algorithm is "filter a candidate array down
to the visible points", so :meth:`Hyperplane.visible_mask` is fully
vectorized: one matrix-vector product per facet plus an exact rational
recheck only for candidates whose float margin is inside the error
envelope.

Correctness of the filter rests on the envelope dominating *both*
rounding sources: the dot product itself, and the error of the
floating-point cofactor normal (whose components are (d-1)x(d-1)
determinants, bounded Hadamard-style by the product ``H`` of the
edge-row norms):

    |computed margin - n_exact . (q - p0)|
        <= 16 d eps (d^2 H + |n|_1 + 1) * (1 + |p0|_inf + |q|_inf).

An earlier version used only the dot-product term; an ill-conditioned
moment-curve (cyclic polytope) workload silently corrupted hulls -- the
regression tests live in ``tests/geometry/test_hyperplane.py`` and
``tests/hull/test_moment_curve.py``.  When even the orientation
reference point falls inside the envelope, the float normal carries no
usable information and the plane switches to *always-exact* mode: every
query is decided rationally.
"""

from __future__ import annotations

import contextlib
import os
from typing import Iterator

import numpy as np

from .linalg import cofactor_normal
from .perturb import orient_sos, orient_sos_combo, sos_active
from .predicates import STATS, orient_exact, orient_exact_combo

__all__ = ["Hyperplane", "exact_mode", "exact_active"]

_EPS = float(np.finfo(np.float64).eps)

# When set, Hyperplane.through() skips the float-certain fast path and
# builds every plane in always-exact mode.  This is the middle rung of
# the robust_hull escalation ladder: if a hull fails with filtered float
# predicates, retry with every decision made rationally before resorting
# to joggling the input.  The REPRO_FORCE_EXACT environment variable
# turns it on process-wide (CI runs the tier-1 suite once this way so a
# filter-threshold regression cannot hide behind the float fast path).
_FORCE_EXACT = os.environ.get("REPRO_FORCE_EXACT", "") not in ("", "0")


@contextlib.contextmanager
def exact_mode() -> Iterator[None]:
    """Force every :meth:`Hyperplane.through` call in the block to build
    an always-exact plane (all visibility decided rationally).

    Not thread-safe with respect to *entering/leaving* the mode: flip it
    only from the orchestrating thread, before workers start building
    planes.  Planes built inside the block stay exact after it exits.
    """
    global _FORCE_EXACT
    prev = _FORCE_EXACT
    _FORCE_EXACT = True
    try:
        yield
    finally:
        _FORCE_EXACT = prev


def exact_active() -> bool:
    """Whether always-exact plane construction is currently forced.

    Worker processes query this so spawned children can re-enter
    :func:`exact_mode` and compute the same bits as their parent."""
    return _FORCE_EXACT


class Hyperplane:
    """Oriented affine hyperplane ``{x : normal . x = offset}`` in R^d.

    ``normal`` points towards the *visible* (outside) half-space (when
    the float fast path is live).  ``base_points`` are the defining
    points; ``ref_point`` the interior reference fixed at construction
    -- together they let the exact fallback re-derive visibility from
    original coordinates.  ``always_exact`` marks planes whose float
    normal is untrustworthy.
    """

    __slots__ = (
        "normal",
        "offset",
        "base_points",
        "ref_point",
        "err_scale",
        "err_base",
        "always_exact",
        "_vis_sign",
        "base_indices",
        "sos",
    )

    def __init__(self, normal, offset, base_points, ref_point,
                 err_scale, err_base, always_exact, vis_sign=None,
                 base_indices=None, sos=False):
        self.normal = normal
        self.offset = offset
        self.base_points = base_points
        self.ref_point = ref_point
        self.err_scale = err_scale
        self.err_base = err_base
        self.always_exact = always_exact
        self._vis_sign = vis_sign
        self.base_indices = base_indices
        self.sos = sos

    @staticmethod
    def through(points: np.ndarray, below: np.ndarray,
                indices=None, ref_combo=None) -> "Hyperplane":
        """Hyperplane through the rows of ``points`` (a ``(d, d)``
        array), oriented so that the reference point ``below`` is on the
        negative (invisible) side.

        Raises ``ValueError`` if ``below`` lies exactly on the plane
        (the caller must pick a strictly interior reference) -- unless
        :func:`~repro.geometry.perturb.sos_mode` is active and both
        ``indices`` (insertion ranks of the defining points) and
        ``ref_combo`` (``(points, ranks)`` of an affine combination
        equal to ``below``) are supplied, in which case the reference's
        side is resolved on the symbolically perturbed points and the
        plane carries SoS tie-breaking for every later zero sign.
        """
        # Scalar twin of kernels.batch_planes + orient_batch, same
        # committed envelope 16 d (d^2 H + NRM + 1)(B + Q) (atoms:
        # S = max |defining point|, B = 1 + max |points[0]|, Q = max
        # |reference|, H = Hadamard product of edge norms, NRM = max
        # |normal| with the 6*H cofactor forward error).  Checked by
        # `repro fpcheck`:
        # repro: fp-bound: assume d in 2..3
        # repro: fp-bound: fact NRM <= 6*H
        # repro: fp-bound: guard env_ref
        # repro: fp-bound: envelope err_scale err_base row_norms hadamard n1 env_ref
        points = np.asarray(points, dtype=np.float64)
        # repro: fp-bound: in points ~ S
        below = np.asarray(below, dtype=np.float64)
        # repro: fp-bound: in below ~ Q
        sos = sos_active() and indices is not None
        base_indices = tuple(int(i) for i in indices) if sos else None
        d = points.shape[1]
        p0 = points[0]
        # repro: fp-bound: bind p0 ~ B
        normal = cofactor_normal(points)
        # repro: fp-bound: in normal ~ NRM err 6*H
        offset = float(normal @ p0)
        edges = points[1:] - p0
        row_norms = np.sqrt((edges * edges).sum(axis=1))
        hadamard = float(np.prod(row_norms)) if row_norms.size else 1.0
        n1 = float(np.abs(normal).sum())
        err_scale = 16.0 * d * _EPS * (d * d * hadamard + n1 + 1.0)
        err_base = 1.0 + float(np.abs(p0).max(initial=0.0))

        margin_ref = float(normal @ below) - offset
        # repro: fp-bound: claim margin_ref <= 16*d*(d*d*H + NRM + 1)*(B + Q)
        env_ref = err_scale * (err_base + float(np.abs(below).max(initial=0.0)))
        if not _FORCE_EXACT and abs(margin_ref) > env_ref:
            # Float-certain: orient the normal so the reference is below.
            if margin_ref > 0:
                normal, offset = -normal, -offset
            return Hyperplane(
                normal=normal, offset=offset, base_points=points,
                ref_point=below, err_scale=err_scale, err_base=err_base,
                always_exact=False, base_indices=base_indices, sos=sos,
            )
        # The reference sits inside the envelope: the float normal is
        # not trustworthy for any decision near this plane.  When the
        # caller supplied the reference as an affine combination, orient
        # against the *exact* combination -- on nearly-flat inputs the
        # plane can pass closer to the true centroid than the rounding
        # error of the float centroid, and orienting against the rounded
        # point then flips vis_sign and inverts every conflict set.
        if ref_combo is not None:
            combo_points, combo_indices = ref_combo
            s_ref = orient_exact_combo(points, combo_points)
            if s_ref == 0:
                if sos:
                    s_ref = orient_sos_combo(
                        points, base_indices, combo_points, combo_indices
                    )
                else:
                    raise ValueError(
                        "orientation reference lies on the hyperplane"
                    )
        else:
            s_ref = orient_exact(points, below)
            if s_ref == 0:
                raise ValueError("orientation reference lies on the hyperplane")
        # Best-effort orient the float normal too (exact decisions go
        # through vis_sign, but diagnostics like joggle containment and
        # the Delaunay lower-facet test read margins()/normal sign and
        # must not see a per-facet coin flip).  sign(normal . (q - p0))
        # equals orient_exact(points, q) in exact arithmetic, so s_ref
        # is exactly the flip the float-certain path derives from
        # margin_ref.
        if s_ref > 0:
            normal, offset = -normal, -offset
        return Hyperplane(
            normal=normal, offset=offset, base_points=points,
            ref_point=below, err_scale=err_scale, err_base=err_base,
            always_exact=True, vis_sign=-s_ref,
            base_indices=base_indices, sos=sos,
        )

    # -- exact orientation -------------------------------------------------

    @property
    def vis_sign(self) -> int:
        """The :func:`orient_exact` value that means "visible", derived
        lazily from the reference point (which is strictly interior)."""
        if self._vis_sign is None:
            s_ref = orient_exact(self.base_points, self.ref_point)
            if s_ref == 0:  # pragma: no cover - through() guarantees otherwise
                raise ValueError("orientation reference lies on the hyperplane")
            self._vis_sign = -s_ref
        return self._vis_sign

    def _side_exact(self, q, index=None) -> int:
        s = orient_exact(self.base_points, q)
        if s == 0:
            if not (self.sos and index is not None):
                return 0
            index = int(index)
            if index in self.base_indices:
                # A point is never strictly visible from its own facet;
                # SoS against a repeated index is undefined.
                return 0
            s = orient_sos(self.base_points, self.base_indices, q, index)
        return 1 if s == self.vis_sign else -1

    # -- scalar predicate ---------------------------------------------------

    def side(self, q, index=None) -> int:
        """Sign of the side of ``q``: +1 visible, -1 invisible, 0 on the
        plane (decided exactly when the float margin is ambiguous).

        On an SoS plane, passing ``index`` (the insertion rank of ``q``)
        breaks exact-zero ties symbolically, so the result is never 0
        for an index outside the plane's defining set.
        """
        # Same envelope as through(), with the plane's stored normal /
        # offset standing in for the freshly derived ones:
        # repro: fp-bound: assume d in 2..3
        # repro: fp-bound: fact NRM <= 6*H
        # repro: fp-bound: fact OFF <= d*NRM*B
        # repro: fp-bound: guard env
        # repro: fp-bound: envelope env
        q = np.asarray(q, dtype=np.float64)
        # repro: fp-bound: in q ~ Q
        # repro: fp-bound: in self.normal ~ NRM err 6*H
        # repro: fp-bound: in self.offset ~ OFF err 6*d*H*B + 2*d^2*NRM*B
        if self.always_exact:
            return self._side_exact(q, index)
        margin = float(self.normal @ q) - self.offset
        # repro: fp-bound: claim margin <= 16*d*(d*d*H + NRM + 1)*(B + Q)
        env = self.err_scale * (self.err_base + float(np.abs(q).max(initial=0.0)))
        STATS.count_float()
        if margin > env:
            return 1
        if margin < -env:
            return -1
        return self._side_exact(q, index)

    def is_visible(self, q, index=None) -> bool:
        """Strict visibility: ``q`` in the open outer half-space."""
        return self.side(q, index) > 0

    # -- vectorized predicate ---------------------------------------------

    def margins(self, pts: np.ndarray) -> np.ndarray:
        """Signed float margins (positive = visible side) for a batch.
        The normal is oriented visible-positive even for always-exact
        planes (best effort); magnitudes below the envelope are noise
        either way."""
        return pts @ self.normal - self.offset

    def visible_mask(self, pts: np.ndarray, indices=None) -> np.ndarray:
        """Boolean mask of strictly visible points among ``pts``.

        Vectorized fast path; candidates within the error envelope are
        re-decided exactly one by one (rare for generic float inputs,
        common for engineered degenerate or ill-conditioned inputs).
        ``indices`` -- the insertion ranks of the rows of ``pts`` -- is
        required for SoS tie-breaking on exact-zero margins; without it
        an SoS plane degrades to "on-plane is invisible".
        """
        pts = np.asarray(pts, dtype=np.float64)
        if pts.size == 0:
            return np.zeros(0, dtype=bool)

        def rank(i):
            return None if indices is None else indices[i]

        if self.always_exact:
            return np.array(
                [self._side_exact(q, rank(i)) > 0 for i, q in enumerate(pts)],
                dtype=bool,
            )
        margins = self.margins(pts)
        env = self.err_scale * (self.err_base + np.abs(pts).max(axis=1))
        mask = margins > env
        uncertain = np.abs(margins) <= env
        STATS.count_float(int(pts.shape[0]))
        if uncertain.any():
            for i in np.nonzero(uncertain)[0]:
                mask[i] = self._side_exact(pts[i], rank(i)) > 0
        return mask
