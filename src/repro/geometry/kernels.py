"""Batched NumPy predicate kernels with an exact-filter fallback.

The hull algorithms spend almost all of their work on *visibility
tests* -- "is point q strictly outside the hyperplane of facet t?" --
the unit Theorem 5.4 counts.  The scalar path evaluates them one
:func:`~repro.geometry.predicates.orient` call (or one
:meth:`~repro.geometry.hyperplane.Hyperplane.side` call) at a time;
this module evaluates whole (facet x candidate-point) blocks in one
``einsum`` sweep over precomputed cofactor normals.

The fast path is *filtered*, exactly like the scalar predicates: each
batched margin comes with the same conservative forward error envelope
that :class:`~repro.geometry.hyperplane.Hyperplane` attaches to its
float normal, and every entry whose margin falls inside the envelope is
re-decided by the existing scalar ladder (exact rational arithmetic,
then Simulation-of-Simplicity tie-breaking on SoS planes).  The batch
kernel therefore cannot *silently* disagree with the scalar oracle: it
either proves a sign with the float filter or delegates the entry to
the very code path the scalar predicates use -- the differential suite
under ``tests/differential/`` pins this down input class by input
class, including the adversarial degenerate corpus.

Three consumers:

* :func:`orient_batch` -- a standalone (F, d, d) x (Q, d) -> (F, Q)
  sign kernel, the differential-testing surface against scalar
  :func:`~repro.geometry.predicates.orient`;
* :class:`BatchKernel` -- the hull-facing engine used by
  :class:`~repro.hull.common.FacetFactory` when a hull is run with
  ``kernel="batch"``: it sweeps ragged per-facet candidate blocks in
  one flattened einsum and carries the per-run sign cache;
* :class:`SignCache` -- visibility decisions keyed by (facet identity,
  point rank).  Facet identity is the sorted defining-index tuple (the
  creation ``fid`` is *not* stable across chaos rollbacks, which is
  precisely when a facet is re-created with the same geometry and the
  cache pays off).

Counters land in :data:`KERNEL_STATS` (module-global, mirroring
``predicates.STATS``) and per-factory in ``exec_stats`` so experiment
logs can report batched-sweep counts, filter-fallback rates, and cache
hit rates.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Sequence

import numpy as np

from ..analyze.shapes import observe
from ..runtime.atomics import ShardedCounter
from .predicates import STATS, orient_exact

__all__ = [
    "KernelStats",
    "KERNEL_STATS",
    "filter_scale",
    "batch_planes",
    "orient_batch",
    "gather_segments",
    "visible_flat",
    "SignCache",
    "BatchKernel",
]

_EPS = float(np.finfo(np.float64).eps)

# Multiplier applied to the float error envelope of the *batched* fast
# path.  Values > 1 widen the envelope: strictly more entries take the
# exact fallback, and the results must not change (the fallback decides
# the same question exactly).  The fuzzer sweeps this knob
# (``tools/fuzz.py --kernels``); values < 1 would shrink the envelope
# below its soundness proof and are rejected.
_FILTER_SCALE = 1.0


@contextlib.contextmanager
def filter_scale(scale: float) -> Iterator[None]:
    """Inflate the batched filter envelope by ``scale`` (>= 1) within
    the block.  Testing knob: any ``scale >= 1`` must leave every hull
    bit-identical, only the fallback *rate* may grow.

    Not thread-safe with respect to entering/leaving: flip it from the
    orchestrating thread before workers start, as with
    :func:`~repro.geometry.hyperplane.exact_mode`.
    """
    if not (scale >= 1.0):
        raise ValueError(f"filter scale must be >= 1 (got {scale!r}): "
                         "shrinking the envelope voids its error bound")
    global _FILTER_SCALE
    prev = _FILTER_SCALE
    _FILTER_SCALE = float(scale)
    try:
        yield
    finally:
        _FILTER_SCALE = prev


class KernelStats:
    """Counters for the batched kernels (sharded: hull runs bump them
    from ThreadExecutor / chaos workers).

    ``batched_signs`` counts every sign decided by a batched sweep
    (float-certain *or* escalated); ``fallbacks`` the subset that fell
    through the float filter to the exact ladder; ``cache_hits`` /
    ``cache_misses`` the :class:`SignCache` outcomes.  Reads are exact
    at quiescent points, as with ``predicates.STATS``.
    """

    __slots__ = ("_sweeps", "_signs", "_fallbacks", "_hits", "_misses")

    def __init__(self) -> None:
        self._sweeps = ShardedCounter()
        self._signs = ShardedCounter()
        self._fallbacks = ShardedCounter()
        self._hits = ShardedCounter()
        self._misses = ShardedCounter()

    def count_sweep(self, signs: int, fallbacks: int) -> None:
        self._sweeps.add(1)
        if signs:
            self._signs.add(signs)
        if fallbacks:
            self._fallbacks.add(fallbacks)

    def count_cache(self, hits: int, misses: int) -> None:
        if hits:
            self._hits.add(hits)
        if misses:
            self._misses.add(misses)

    @property
    def batched_sweeps(self) -> int:
        return self._sweeps.value

    @property
    def batched_signs(self) -> int:
        return self._signs.value

    @property
    def fallbacks(self) -> int:
        return self._fallbacks.value

    @property
    def cache_hits(self) -> int:
        return self._hits.value

    @property
    def cache_misses(self) -> int:
        return self._misses.value

    def fallback_rate(self) -> float:
        return self.fallbacks / max(1, self.batched_signs)

    def reset(self) -> None:
        for c in (self._sweeps, self._signs, self._fallbacks,
                  self._hits, self._misses):
            c.reset()

    def snapshot(self) -> dict[str, int]:
        return {
            "batched_sweeps": self.batched_sweeps,
            "batched_signs": self.batched_signs,
            "fallbacks": self.fallbacks,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }


#: Module-level statistics, mirroring ``predicates.STATS``.
KERNEL_STATS = KernelStats()


def batch_planes(
    simplices: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Cofactor normals, offsets, and error-envelope coefficients for a
    stack of ``(F, d, d)`` simplices, all in one vectorized pass.

    Returns ``(normals, offsets, err_scale, err_base)`` matching what
    :meth:`Hyperplane.through` computes per plane: ``normals[f]`` is the
    (unoriented) cofactor normal of simplex ``f``, and the envelope of a
    query ``q`` against plane ``f`` is
    ``err_scale[f] * (err_base[f] + |q|_inf)``.
    """
    # repro: shape: simplices=(F,d,d):float64, normals=(F,d):float64
    # repro: shape: offsets=(F,):float64, err_scale=(F,):float64
    # repro: shape: err_base=(F,):float64
    #
    # Error-envelope derivation, checked by `repro fpcheck` (atoms are
    # per-plane measured magnitudes: S = max |simplex entry|, B =
    # err_base, R0/R1 = edge row norms, H = hadamard, NRM = n1,
    # OFF = |offset|; ESC = err_scale / eps):
    # repro: fp-bound: assume d in 2..3
    # repro: fp-bound: fact R0*R1 <= H @d=3
    # repro: fp-bound: fact R0 <= H @d=2
    # repro: fp-bound: fact NRM <= 6*H
    # repro: fp-bound: out normals ~ NRM err 6*H
    # repro: fp-bound: out offsets ~ OFF err 6*d*H*B + 2*d^2*NRM*B
    # repro: fp-bound: out err_scale ~ ESC
    # repro: fp-bound: out err_base ~ B
    # repro: fp-bound: envelope err_scale err_base row_norms hadamard n1
    simplices = np.asarray(simplices, dtype=np.float64)
    if simplices.ndim != 3 or simplices.shape[1] != simplices.shape[2]:
        raise ValueError(f"need (F, d, d) simplices, got {simplices.shape}")
    nf, d, _ = simplices.shape
    # repro: fp-bound: in simplices ~ S
    p0 = simplices[:, :1, :]
    # repro: fp-bound: bind p0 ~ B
    edges = simplices[:, 1:, :] - p0  # (F, d-1, d)
    # repro: fp-bound: bind edges ~ R0 @d=2
    if d == 2:
        normals = np.stack([-edges[:, 0, 1], edges[:, 0, 0]], axis=1)
    elif d == 3:
        e0 = edges[:, 0, :]
        e1 = edges[:, 1, :]
        # repro: fp-bound: bind e0 ~ R0
        # repro: fp-bound: bind e1 ~ R1
        normals = np.cross(e0, e1)
    else:
        # Laplace expansion along the LAST row of [edges; q - p0]:
        # the cofactor of column j carries (-1)^{(d-1)+j}, so this sign
        # (not linalg.cofactor_normal's raw (-1)^j, which Hyperplane
        # re-orients anyway) keeps normal . (q - p0) == det for every
        # d -- the convention orient() decides signs in.
        normals = np.empty((nf, d))
        cols = np.arange(d)
        for j in range(d):
            minors = edges[:, :, cols != j]           # (F, d-1, d-1)
            normals[:, j] = (-1.0) ** (d - 1 + j) * np.linalg.det(minors)
    # repro: fp-bound: bind normals ~ NRM
    offsets = np.einsum("fd,fd->f", normals, p0[:, 0, :])
    row_norms = np.sqrt((edges * edges).sum(axis=2))  # (F, d-1)
    hadamard = row_norms.prod(axis=1) if d > 1 else np.ones(nf)
    n1 = np.abs(normals).sum(axis=1)
    err_scale = 16.0 * d * _EPS * (d * d * hadamard + n1 + 1.0)
    err_base = 1.0 + np.abs(simplices[:, 0, :]).max(axis=1, initial=0.0)
    observe("repro.geometry.kernels.batch_planes",
            simplices=simplices, normals=normals, offsets=offsets,
            err_scale=err_scale, err_base=err_base)
    return normals, offsets, err_scale, err_base


def orient_batch(simplices: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """Orientation signs of every query against every simplex plane:
    an ``(F, Q)`` int matrix with ``out[f, q] ==
    orient(simplices[f], queries[q])`` for all entries.

    One einsum sweep computes all ``F x Q`` float margins; entries whose
    margin falls inside the (per-plane, per-query) error envelope are
    re-decided by the exact rational path -- the same
    :func:`~repro.geometry.predicates.orient_exact` the scalar predicate
    escalates to, so agreement with the scalar oracle is structural, not
    statistical.
    """
    # repro: shape: simplices=(F,d,d):float64, queries=(Q,d):float64
    # repro: shape: margins=(F,Q):float64, signs=(F,Q):int8 -> (F,Q):int64
    #
    # The committed envelope below (err_scale * (err_base + q_inf) at
    # _FILTER_SCALE == 1) must dominate the first-order rounding error
    # of the margins sweep; `repro fpcheck` re-derives that bound from
    # the arithmetic (Q here is the query magnitude atom |q|_inf):
    # repro: fp-bound: assume d in 2..3
    # repro: fp-bound: fact OFF <= d*NRM*B
    # repro: fp-bound: guard env
    # repro: fp-bound: envelope env q_inf
    simplices = np.asarray(simplices, dtype=np.float64)
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    # repro: fp-bound: in queries ~ Q
    normals, offsets, err_scale, err_base = batch_planes(simplices)
    # margins[f, q] = normal_f . q - offset_f  (one sweep for the block)
    margins = np.einsum("fd,qd->fq", normals, queries) - offsets[:, None]
    # repro: fp-bound: claim margins <= 16*d*(d*d*H + NRM + 1)*(B + Q)
    q_inf = np.abs(queries).max(axis=1, initial=0.0)                 # (Q,)
    env = _FILTER_SCALE * err_scale[:, None] * (err_base[:, None] + q_inf[None, :])
    signs = np.zeros(margins.shape, dtype=np.int8)
    signs[margins > env] = 1
    signs[margins < -env] = -1
    uncertain = np.abs(margins) <= env
    n_signs = int(margins.size)
    n_fall = int(uncertain.sum())
    STATS.count_float(n_signs)
    if n_fall:
        # The exact-fallback loop IS the filter design: only the
        # envelope-ambiguous entries (a vanishing fraction) take the
        # per-element rational ladder.
        for f, q in zip(*np.nonzero(uncertain)):
            signs[f, q] = orient_exact(simplices[f], queries[q])  # repro: noqa: RPRHOT002
    KERNEL_STATS.count_sweep(n_signs, n_fall)
    observe("repro.geometry.kernels.orient_batch",
            simplices=simplices, queries=queries, margins=margins,
            signs=signs)
    return signs.astype(np.int64)


def gather_segments(
    starts: np.ndarray, lens: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Flatten ragged segments of a pooled array into gather positions.

    Segment ``k`` occupies ``pool[starts[k] : starts[k] + lens[k]]``.
    Returns ``(pos, owner)`` where ``pool[pos]`` is the concatenation of
    all segments in order and ``owner[i]`` is the segment index that
    produced entry ``i`` -- the prefix-sum gather the SoA conflict-list
    engine uses to pull every ready facet's conflict list in one indexed
    load, with no per-facet Python loop.
    """
    # repro: shape: starts=(K,):int64, lens=(K,):int64
    # repro: shape: pos=(M,):int64, owner=(M,):int64
    starts = np.asarray(starts, dtype=np.int64)
    lens = np.asarray(lens, dtype=np.int64)
    owner = np.repeat(np.arange(lens.shape[0], dtype=np.int64), lens)
    total = int(lens.sum())
    if not total:
        return np.zeros(0, dtype=np.int64), owner
    ends = np.cumsum(lens)
    # Within-segment offsets: a global arange minus each segment's
    # cumulative start, rebased onto the pool start.
    pos = np.arange(total, dtype=np.int64) + np.repeat(starts - (ends - lens), lens)
    observe("repro.geometry.kernels.gather_segments",
            starts=starts, lens=lens, pos=pos, owner=owner)
    return pos, owner


def visible_flat(
    pts: np.ndarray,
    normals: np.ndarray,
    offsets: np.ndarray,
    err_scale: np.ndarray,
    err_base: np.ndarray,
    owner: np.ndarray,
    ranks: np.ndarray,
    force_exact: np.ndarray | None = None,
    plane_for=None,
    stats: KernelStats | None = None,
    pts_inf: np.ndarray | None = None,
) -> np.ndarray:
    """Strict-visibility mask for a flat (facet, point) stream.

    ``ranks`` are point ranks into ``pts`` and ``owner[i]`` the row of
    the plane stack that entry ``i`` is tested against -- the flattened
    form of a whole round's (ready facet x conflict point) block.  One
    einsum computes every float margin; entries inside the per-plane
    error envelope -- plus every entry of a plane flagged in
    ``force_exact`` (always-exact planes carry no trustworthy float
    sign) -- are re-decided by the scalar ladder of the materialized
    :class:`~repro.geometry.hyperplane.Hyperplane` that ``plane_for(k)``
    returns, so the flat sweep cannot silently disagree with the scalar
    oracle: identical filter, identical fallback.  ``pts_inf``, when
    given, must be ``np.abs(pts).max(axis=1)`` -- a caller that sweeps
    many rounds precomputes it once instead of re-reducing the gathered
    coordinate block every call.
    """
    # repro: shape: ranks=(M,):int64, owner=(M,):int64
    # repro: shape: pts_flat=(M,d):float64, margins=(M,):float64
    # repro: shape: env=(M,):float64, mask=(M,):bool
    #
    # Filter-boundary admission for `repro fpcheck`: the plane columns
    # arrive with batch_planes' proven error summaries, and the margin
    # sweep must stay inside the same committed envelope (atoms as in
    # batch_planes; Q = gathered point magnitude |p|_inf):
    # repro: fp-bound: assume d in 2..3
    # repro: fp-bound: in normals ~ NRM err 6*H
    # repro: fp-bound: in offsets ~ OFF err 6*d*H*B + 2*d^2*NRM*B
    # repro: fp-bound: fact OFF <= d*NRM*B
    # repro: fp-bound: guard env
    # repro: fp-bound: envelope scale packed env
    if not ranks.size:
        return np.zeros(0, dtype=bool)
    d = pts.shape[1]
    # repro: fp-bound: in pts ~ Q
    pts_flat = pts[ranks]
    # Pack every per-plane scalar the sweep needs into one (K, d+3)
    # matrix so the per-entry stream costs a *single* wide gather
    # instead of five separate fancy-indexed passes (normals, offsets,
    # err_scale, err_base): columns are [normal | offset | scale |
    # scale*err_base].  K (planes) is small; M (entries) is the round.
    packed = np.empty((normals.shape[0], d + 3), dtype=np.float64)
    packed[:, :d] = normals
    packed[:, d] = offsets
    scale = _FILTER_SCALE * err_scale
    packed[:, d + 1] = scale
    packed[:, d + 2] = scale * err_base
    g = packed[owner]
    gn = g[:, :d]    # repro: fp-bound: in gn ~ NRM err 6*H
    go = g[:, d]     # repro: fp-bound: in go ~ OFF err 6*d*H*B + 2*d^2*NRM*B
    margins = np.einsum("md,md->m", pts_flat, gn)
    margins -= go
    # repro: fp-bound: claim margins <= 16*d*(d*d*H + NRM + 1)*(B + Q)
    q_inf = (np.abs(pts_flat).max(axis=1) if pts_inf is None
             else pts_inf[ranks])
    env = g[:, d + 1] * q_inf
    env += g[:, d + 2]
    mask = margins > env
    # |margins| <= env, with the abs in place: margins' raw values are
    # not needed past this point.
    np.abs(margins, out=margins)
    uncertain = margins <= env
    if force_exact is not None:
        forced = force_exact[owner]
        mask &= ~forced
        uncertain |= forced
    n_signs = int(ranks.shape[0])
    n_fall = int(uncertain.sum())
    STATS.count_float(n_signs)
    if n_fall:
        # Envelope-ambiguous (or forced-exact) entries only: the
        # by-design per-element rational ladder, as in orient_batch.
        for m in np.nonzero(uncertain)[0]:  # repro: noqa: RPRHOT001
            r = int(ranks[m])
            mask[m] = plane_for(int(owner[m]))._side_exact(pts[r], r) > 0  # repro: noqa: RPRHOT002
    KERNEL_STATS.count_sweep(n_signs, n_fall)
    if stats is not None:
        stats.count_sweep(n_signs, n_fall)
    observe("repro.geometry.kernels.visible_flat",
            ranks=ranks, owner=owner, pts_flat=pts_flat,
            margins=margins, env=env, mask=mask)
    return mask


class SignCache:
    """Per-run visibility decisions keyed by (facet identity, rank).

    A facet's identity is its sorted defining-index tuple; the value per
    facet is the ``(candidates, visible)`` pair of its last creation,
    both ascending-index aligned arrays.  Lookups intersect the new
    candidate array with the cached one via ``searchsorted`` (both are
    ascending), so a rollback-re-created facet reuses every previously
    decided sign without a per-point Python loop.

    CPython dict get/set are atomic under the GIL; entries are
    immutable-once-stored arrays, so concurrent readers under
    ThreadExecutor see either the whole entry or none of it.
    """

    __slots__ = ("_entries", "hits", "misses")

    def __init__(self) -> None:
        self._entries: dict[tuple[int, ...], tuple[np.ndarray, np.ndarray]] = {}
        self.hits = ShardedCounter()
        self.misses = ShardedCounter()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(
        self, indices: tuple[int, ...], candidates: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Split ``candidates`` into (cached-visibility, need-compute).

        Returns ``(known, mask_known)`` where ``known`` is a boolean
        array marking candidates answered from the cache and
        ``mask_known`` their visibility; entries not covered must be
        computed (and later stored with :meth:`store`).
        """
        known = np.zeros(candidates.shape[0], dtype=bool)
        vis = np.zeros(candidates.shape[0], dtype=bool)
        entry = self._entries.get(indices)
        if entry is not None and candidates.size:
            cached_cands, cached_vis = entry
            pos = np.searchsorted(cached_cands, candidates)
            pos_ok = pos < cached_cands.shape[0]
            safe = np.where(pos_ok, pos, 0)
            match = pos_ok & (cached_cands[safe] == candidates)
            known = match
            vis[match] = cached_vis[safe[match]]
        n_hit = int(known.sum())
        if n_hit:
            self.hits.add(n_hit)
        n_miss = int(candidates.shape[0]) - n_hit
        if n_miss:
            self.misses.add(n_miss)
        KERNEL_STATS.count_cache(n_hit, n_miss)
        return known, vis

    def store(
        self, indices: tuple[int, ...], candidates: np.ndarray, visible: np.ndarray
    ) -> None:
        """Record the full (candidates, visibility) outcome of one facet
        creation (candidates ascending)."""
        self._entries[indices] = (
            np.ascontiguousarray(candidates),
            np.ascontiguousarray(visible),
        )

    def snapshot(self) -> dict[str, int]:
        return {
            "entries": len(self._entries),
            "cache_hits": self.hits.value,
            "cache_misses": self.misses.value,
        }


class BatchKernel:
    """The hull-facing batched visibility engine.

    One instance per :class:`~repro.hull.common.FacetFactory`; it owns
    the rank-ordered point array, the per-run :class:`SignCache`, and
    per-instance counters (surfaced through ``exec_stats``).  The core
    entry point :meth:`visible_blocks` takes already-built
    :class:`~repro.geometry.hyperplane.Hyperplane` objects -- the plane
    (and therefore the orientation and the error envelope) is *shared*
    with the scalar path, which is what makes the two paths decide the
    same question with the same fallback set.
    """

    def __init__(self, pts: np.ndarray, cache: bool = True):
        self.pts = np.asarray(pts, dtype=np.float64)
        self.cache = SignCache() if cache else None
        self.stats = KernelStats()

    def snapshot(self) -> dict[str, int]:
        snap = self.stats.snapshot()
        snap["cache_entries"] = 0 if self.cache is None else len(self.cache)
        return snap

    def visible_blocks(
        self,
        planes: Sequence,
        indices_list: Sequence[tuple[int, ...]],
        cand_list: Sequence[np.ndarray],
    ) -> list[np.ndarray]:
        """Visibility masks for a ragged (facet x candidates) block.

        ``planes[k]`` is the oriented hyperplane of facet ``k``,
        ``indices_list[k]`` its sorted defining-index tuple (the cache
        key), ``cand_list[k]`` its ascending candidate-rank array.
        Returns one boolean mask per facet, elementwise equal to
        ``planes[k].visible_mask(pts[cand_list[k]], indices=cand_list[k])``.
        """
        # repro: shape: flat=(M,):int64, pts_flat=(M,d):float64
        # repro: shape: margins=(M,):float64, env=(M,):float64
        # repro: shape: normals=(S,d):float64, offsets=(S,):float64
        nf = len(planes)
        masks: list[np.ndarray] = [None] * nf  # type: ignore[list-item]
        # Cache phase + partition: always-exact planes cannot use the
        # float sweep (their normal carries no trustworthy sign) and go
        # straight to the scalar ladder, exactly like visible_mask.
        todo_cands: list[np.ndarray] = []     # residual work per facet
        todo_local: list[np.ndarray] = []     # positions inside the mask
        sweep_rows: list[int] = []            # facet positions in the einsum
        for k, (plane, idx, cands) in enumerate(zip(planes, indices_list, cand_list)):
            cands = np.asarray(cands, dtype=np.int64)
            mask = np.zeros(cands.shape[0], dtype=bool)
            masks[k] = mask
            if not cands.size:
                todo_cands.append(cands)
                todo_local.append(np.zeros(0, dtype=np.int64))
                continue
            if self.cache is not None:
                known, vis = self.cache.lookup(idx, cands)
                mask[known] = vis[known]
                local = np.nonzero(~known)[0].astype(np.int64)
            else:
                local = np.arange(cands.shape[0], dtype=np.int64)
            if local.size and plane.always_exact:
                # Scalar ladder for the whole block (counted as
                # fallbacks: no float sign exists for these planes).
                for i in local:  # repro: noqa: RPRHOT001
                    r = int(cands[i])
                    mask[i] = plane._side_exact(self.pts[r], r) > 0  # repro: noqa: RPRHOT002
                self.stats.count_sweep(int(local.size), int(local.size))
                KERNEL_STATS.count_sweep(int(local.size), int(local.size))
                local = np.zeros(0, dtype=np.int64)
            todo_cands.append(cands[local] if local.size else np.zeros(0, np.int64))
            todo_local.append(local)
            if local.size:
                sweep_rows.append(k)
        total = sum(int(todo_cands[k].size) for k in sweep_rows)
        if total:
            # Flattened einsum sweep over every residual (facet, point)
            # pair: gather the points once, one fused multiply-reduce,
            # one envelope comparison.
            sizes = [int(todo_cands[k].size) for k in sweep_rows]
            facet_of = np.repeat(np.arange(len(sweep_rows)), sizes)
            flat = np.concatenate([todo_cands[k] for k in sweep_rows])
            normals = np.stack([planes[k].normal for k in sweep_rows])
            offsets = np.array([planes[k].offset for k in sweep_rows])
            e_scale = np.array([planes[k].err_scale for k in sweep_rows])
            e_base = np.array([planes[k].err_base for k in sweep_rows])
            pts_flat = self.pts[flat]                         # (M, d)
            margins = (
                np.einsum("md,md->m", pts_flat, normals[facet_of])
                - offsets[facet_of]
            )
            env = _FILTER_SCALE * e_scale[facet_of] * (
                e_base[facet_of] + np.abs(pts_flat).max(axis=1)
            )
            flat_mask = margins > env
            uncertain = np.abs(margins) <= env
            STATS.count_float(total)
            n_fall = int(uncertain.sum())
            if n_fall:
                # Envelope-ambiguous entries only: the by-design
                # per-element exact ladder, as in orient_batch.
                for m in np.nonzero(uncertain)[0]:  # repro: noqa: RPRHOT001
                    k = sweep_rows[int(facet_of[m])]
                    r = int(flat[m])
                    flat_mask[m] = planes[k]._side_exact(self.pts[r], r) > 0  # repro: noqa: RPRHOT002
            self.stats.count_sweep(total, n_fall)
            KERNEL_STATS.count_sweep(total, n_fall)
            observe("repro.geometry.kernels.BatchKernel.visible_blocks",
                    flat=flat, pts_flat=pts_flat, margins=margins,
                    env=env, normals=normals, offsets=offsets)
            # Scatter back per facet.
            off = 0
            for pos, k in enumerate(sweep_rows):
                sz = sizes[pos]
                masks[k][todo_local[k]] = flat_mask[off:off + sz]
                off += sz
        if self.cache is not None:
            for k, (idx, cands) in enumerate(zip(indices_list, cand_list)):
                cands = np.asarray(cands, dtype=np.int64)
                if cands.size:
                    self.cache.store(idx, cands, masks[k])
        return masks
