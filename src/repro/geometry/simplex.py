"""Facet and ridge value types shared by all hull algorithms.

The paper's configuration space for d-dimensional hulls (Table 1) has

* *facets*: oriented d-simplices, the configurations;
* *ridges*: (d-2)-dimensional interfaces, each incident on exactly two
  facets -- the communication keys of Algorithm 3's multimap ``M``.

A ridge is identified purely by its defining point indices, so it is a
``frozenset``.  A facet is a *created object* (two facets with the same
point set can exist at different times with different conflict sets
during an asynchronous run), so facets carry a unique creation id and
hash/compare by it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .hyperplane import Hyperplane

__all__ = ["Ridge", "Facet", "facet_ridges"]

#: A ridge is the frozenset of its (d-1) defining point indices.
Ridge = frozenset


@dataclass(eq=False)
class Facet:
    """An oriented facet of the (intermediate) hull.

    Attributes
    ----------
    fid:
        Unique creation id; facets hash and compare by it.
    indices:
        Sorted tuple of the ``d`` defining point indices.
    plane:
        Oriented hyperplane; interior on the negative side.
    conflicts:
        Ascending ``int64`` array of conflicting point indices (points
        strictly visible from this facet), in insertion-rank order.  Set
        once at creation and never mutated -- the *conflict pivot*
        ``min(C(t))`` of Algorithm 3 is just ``conflicts[0]``.
    alive:
        Cleared when the facet is replaced or buried.
    """

    fid: int
    indices: tuple[int, ...]
    plane: Hyperplane
    conflicts: np.ndarray
    alive: bool = True

    def __hash__(self) -> int:
        return self.fid

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Facet) and other.fid == self.fid

    @property
    def pivot(self) -> int:
        """Conflict pivot min_S(C(t)); ``-1`` when the conflict set is
        empty (the facet is final)."""
        return int(self.conflicts[0]) if self.conflicts.size else -1

    def key(self) -> tuple[frozenset, int]:
        """Geometric identity: point set plus orientation sign of the
        first normal component (used to compare facet *sets* across
        algorithm variants, where creation ids differ)."""
        nz = np.nonzero(self.plane.normal)[0]
        if not nz.size:
            # SoS planes over degenerate (not full-dimensional) defining
            # sets can carry an exactly-zero float normal; identity then
            # rests on the point set alone.
            return frozenset(self.indices), 0
        sign = 1 if self.plane.normal[nz[0]] > 0 else -1
        return frozenset(self.indices), sign * (int(nz[0]) + 1)

    def ridges(self) -> Iterator[Ridge]:
        """The d ridges of this facet (all (d-1)-subsets of its points)."""
        return facet_ridges(self.indices)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "dead"
        return f"Facet#{self.fid}{self.indices} [{state}, pivot={self.pivot}]"


def facet_ridges(indices: tuple[int, ...]) -> Iterator[Ridge]:
    """Iterate the ridges (all (d-1)-subsets) of a facet's point tuple."""
    s = frozenset(indices)
    for i in indices:
        yield s - {i}
