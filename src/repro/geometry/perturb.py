"""Simulation-of-Simplicity symbolic perturbation (Edelsbrunner--Mücke).

The paper's analysis (Theorems 1.1/4.2/5.3) assumes points in *general
position*: no ``d+1`` input points affinely dependent.  Real inputs --
duplicates, grids, collinear runs, cocircular sensors -- violate that
freely, and the exact predicate layer then returns honest zero signs
that the incremental algorithms cannot interpret (a point exactly *on*
a facet plane is neither visible nor invisible).

This module removes the zeros instead of the degeneracy: every input
point ``p_i`` (``i`` its insertion rank) is perturbed *symbolically* to

    p_i(eps)[j] = p_i[j] + eps ** (2 ** (i*d + j)),

a distinct power of an infinitesimal ``eps > 0`` per (point, coordinate).
For any fixed point set the perturbed cloud is in general position for
all sufficiently small ``eps``: the orientation determinant of any
``d+1`` perturbed points is a polynomial in ``eps`` whose coefficients
include a pure-perturbation monomial with coefficient ``+-1`` (the
exponents ``2**k`` are distinct powers of two, so no two permutation
terms can collide or cancel), hence it is not identically zero, and its
sign as ``eps -> 0+`` is the sign of the nonzero coefficient with the
smallest exponent.  That sign is what :func:`orient_sos` returns: the
exact sign when it is nonzero, the first non-vanishing perturbation
coefficient when it is not.  Ties are thereby broken *deterministically
by index rank* -- the same two points tie the same way in every
predicate call, in every execution discipline -- so Algorithms 1-5 run
unmodified on degenerate inputs and all schedules agree on one
**canonical simplicial hull** of the (infinitesimally) perturbed cloud.

The canonical hull is simplicial even where the true hull is not
(coplanar facets are triangulated; duplicated or boundary-collinear
points can appear as vertices of zero-volume facets).
:func:`merge_coplanar_facets` is the user-facing post-pass that groups
output facets lying on one exact supporting hyperplane back into the
true geometric faces.

Nothing here is randomized and nothing inspects coordinates beyond the
exact rational arithmetic: two runs over the same insertion order make
identical decisions, which is what ``hull.certify`` certificates and the
cross-discipline corpus tests (tests/hull/test_sos_hull.py) pin down.
"""

from __future__ import annotations

import contextlib
import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterator, Sequence

import numpy as np

from .predicates import STATS

__all__ = [
    "sos_mode",
    "sos_active",
    "sos_exponent",
    "orient_sos",
    "orient_sos_combo",
    "MergedFacet",
    "merge_coplanar_facets",
]


# --------------------------------------------------------------------------
# The perturbation convention.
# --------------------------------------------------------------------------

def sos_exponent(index: int, coord: int, d: int) -> int:
    """The eps-exponent ``2**(index*d + coord)`` perturbing coordinate
    ``coord`` of the point with insertion rank ``index`` in R^d.

    Lower ranks get the *larger* perturbations (``eps**1 > eps**2 > ...``
    for ``eps < 1``), so earlier-inserted points win ties -- the "by
    index rank" discipline the degeneracy model documents.  Distinct
    powers of two make every subset-sum of exponents unique, which is
    what rules out cancellation between permutation terms.
    """
    if index < 0 or coord < 0 or coord >= d:
        raise ValueError(f"bad perturbation site (index={index}, coord={coord}, d={d})")
    return 1 << (index * d + coord)


# --------------------------------------------------------------------------
# Sparse univariate polynomials in eps: {exponent: Fraction} with big-int
# exponents.  Only the handful of operations the determinant needs.
# --------------------------------------------------------------------------

Poly = dict  # exponent (int) -> coefficient (Fraction), zero coeffs absent


def _poly_const(c: Fraction) -> Poly:
    return {0: c} if c else {}


def _poly_add(a: Poly, b: Poly) -> Poly:
    out = dict(a)
    for e, c in b.items():
        s = out.get(e, Fraction(0)) + c
        if s:
            out[e] = s
        else:
            out.pop(e, None)
    return out


def _poly_sub(a: Poly, b: Poly) -> Poly:
    out = dict(a)
    for e, c in b.items():
        s = out.get(e, Fraction(0)) - c
        if s:
            out[e] = s
        else:
            out.pop(e, None)
    return out


def _poly_mul(a: Poly, b: Poly) -> Poly:
    out: Poly = {}
    for ea, ca in a.items():
        for eb, cb in b.items():
            e = ea + eb
            s = out.get(e, Fraction(0)) + ca * cb
            if s:
                out[e] = s
            else:
                out.pop(e, None)
    return out


def _poly_scale(a: Poly, c: Fraction) -> Poly:
    if not c:
        return {}
    return {e: v * c for e, v in a.items()}


def _poly_sign_at_zero_plus(p: Poly) -> int:
    """Sign of ``p(eps)`` for all sufficiently small ``eps > 0``: the
    sign of the coefficient with the smallest exponent.  Zero for the
    zero polynomial (the caller treats that as an invalid perturbation
    request, e.g. a duplicated point *index*)."""
    if not p:
        return 0
    c = p[min(p)]
    return 1 if c > 0 else -1


def _poly_det(rows: list[list[Poly]]) -> Poly:
    """Determinant of a small matrix of sparse polynomials, by cofactor
    expansion along the first column (matrices are (d x d) for ambient
    dimension d, so no cleverness is warranted)."""
    n = len(rows)
    if n == 1:
        return rows[0][0]
    if n == 2:
        return _poly_sub(
            _poly_mul(rows[0][0], rows[1][1]), _poly_mul(rows[0][1], rows[1][0])
        )
    out: Poly = {}
    for i in range(n):
        entry = rows[i][0]
        if not entry:
            continue
        minor = [r[1:] for k, r in enumerate(rows) if k != i]
        term = _poly_mul(entry, _poly_det(minor))
        out = _poly_add(out, term) if i % 2 == 0 else _poly_sub(out, term)
    return out


def _point_row(p: Sequence, index: int, d: int) -> list[Poly]:
    """Coordinate polys of the perturbed point ``p_index``."""
    row = []
    for j in range(d):
        poly = _poly_const(Fraction(float(p[j])))
        poly[sos_exponent(index, j, d)] = Fraction(1)
        row.append(poly)
    return row


def _combo_row(
    points: Sequence[Sequence], indices: Sequence[int], weights: Sequence[Fraction], d: int
) -> list[Poly]:
    """Coordinate polys of the affine combination ``sum w_k p_{i_k}`` of
    perturbed points (weights must sum to 1; not checked here)."""
    row: list[Poly] = [{} for _ in range(d)]
    for p, i, w in zip(points, indices, weights):
        w = Fraction(w)
        for j, poly in enumerate(_point_row(p, i, d)):
            row[j] = _poly_add(row[j], _poly_scale(poly, w))
    return row


def _edge_det_sign(rows: list[list[Poly]]) -> int:
    """Sign at eps->0+ of det of the edge matrix ``[row_1 - row_0; ...;
    row_m - row_0]`` built from ``m+1`` homogeneous coordinate rows --
    the same convention as :func:`repro.geometry.predicates.orient`."""
    base = rows[0]
    edges = [[_poly_sub(r[j], base[j]) for j in range(len(base))] for r in rows[1:]]
    return _poly_sign_at_zero_plus(_poly_det(edges))


# --------------------------------------------------------------------------
# Public predicates.
# --------------------------------------------------------------------------

def orient_sos(
    simplex: np.ndarray,
    simplex_indices: Sequence[int],
    query,
    query_index: int,
) -> int:
    """Orientation of ``query`` (insertion rank ``query_index``) against
    the hyperplane through the ``d`` rows of ``simplex`` (ranks
    ``simplex_indices``), under Simulation of Simplicity.

    Never returns 0 for distinct indices.  Raises :class:`ValueError`
    when ``query_index`` collides with a simplex index -- a perturbed
    point is never degenerate against itself, and a caller asking means
    it lost track of its own facet structure.
    """
    idx = tuple(int(i) for i in simplex_indices)
    qi = int(query_index)
    if qi in idx or len(set(idx)) != len(idx):
        raise ValueError(
            f"SoS orientation with repeated point index (simplex {idx}, query {qi})"
        )
    simplex = np.asarray(simplex, dtype=np.float64)
    d = simplex.shape[1]
    STATS.count_sos()
    rows = [_point_row(p, i, d) for p, i in zip(simplex, idx)]
    rows.append(_point_row(np.asarray(query, dtype=np.float64), qi, d))
    sign = _edge_det_sign(rows)
    if sign == 0:  # pragma: no cover - impossible by the 2-power argument
        raise AssertionError("SoS-perturbed determinant vanished identically")
    return sign


def orient_sos_combo(
    simplex: np.ndarray,
    simplex_indices: Sequence[int],
    combo_points: np.ndarray,
    combo_indices: Sequence[int],
    weights: Sequence[Fraction] | None = None,
) -> int:
    """Orientation of the affine combination ``sum w_k p_{i_k}`` of
    perturbed input points against the perturbed simplex.

    This is how the hull's *interior reference point* (the centroid of
    the initial simplex, not itself an input point) is classified when
    the input is so degenerate that its exact sign is zero, e.g. a
    cloud that is not full-dimensional.  The combination must involve at
    least one index outside the simplex (the centroid always does), so
    the perturbed determinant cannot vanish identically.
    """
    simplex = np.asarray(simplex, dtype=np.float64)
    combo_points = np.asarray(combo_points, dtype=np.float64)
    d = simplex.shape[1]
    idx = tuple(int(i) for i in simplex_indices)
    ci = tuple(int(i) for i in combo_indices)
    if weights is None:
        weights = [Fraction(1, len(ci))] * len(ci)
    if not any(i not in idx for i in ci):
        raise ValueError(
            f"combination {ci} lies entirely inside the simplex index set {idx}"
        )
    STATS.count_sos()
    rows = [_point_row(p, i, d) for p, i in zip(simplex, idx)]
    rows.append(_combo_row(combo_points, ci, weights, d))
    sign = _edge_det_sign(rows)
    if sign == 0:  # pragma: no cover - impossible while weights are nonzero
        raise AssertionError("SoS-perturbed combination determinant vanished")
    return sign


# --------------------------------------------------------------------------
# The mode switch (mirrors hyperplane.exact_mode's discipline).
# --------------------------------------------------------------------------

# When set, FacetFactory/Hyperplane construction captures point indices
# and resolves every zero sign through the perturbation above.  Like
# exact_mode, flip it only from the orchestrating thread before workers
# start; planes built inside the block keep resolving ties symbolically
# after it exits.
_SOS_ACTIVE = False


def sos_active() -> bool:
    """Is Simulation-of-Simplicity tie-breaking currently enabled?"""
    return _SOS_ACTIVE


@contextlib.contextmanager
def sos_mode() -> Iterator[None]:
    """Enable SoS tie-breaking for every hull built in the block.

    Inside the block the general-position assumption holds symbolically:
    every ``d+1`` ranks are affinely independent, so the initial simplex
    is always ranks ``0..d`` and no input is rejected as flat.  The
    resulting hull is the canonical simplicial hull of the perturbed
    cloud (see the module docstring); merge coplanar facets for
    user-facing faces.
    """
    global _SOS_ACTIVE
    prev = _SOS_ACTIVE
    _SOS_ACTIVE = True
    try:
        yield
    finally:
        _SOS_ACTIVE = prev


# --------------------------------------------------------------------------
# The user-facing post-pass: merge coplanar facets of a finished hull.
# --------------------------------------------------------------------------

@dataclass
class MergedFacet:
    """One geometric face of the hull: a maximal ridge-connected group
    of simplicial output facets sharing an exact supporting hyperplane.

    ``vertices`` are the union of the member facets' point indices (in
    the producing run's rank space); ``fids`` the member facet ids;
    ``normal``/``offset`` the primitive-integer exact outward normal
    (empty for a fully degenerate zero-volume group that touched no
    non-degenerate neighbour).
    """

    vertices: tuple[int, ...]
    fids: tuple[int, ...]
    normal: tuple[int, ...] = ()
    offset: Fraction = Fraction(0)
    degenerate: bool = False
    members: list = field(default_factory=list, repr=False)


def _exact_outward_plane(facet, points: np.ndarray):
    """Primitive-integer outward normal and offset of a facet's exact
    supporting hyperplane, or None when the facet is zero-volume."""
    from .linalg import cofactor_normal_exact

    base = [points[i] for i in facet.indices]
    normal = cofactor_normal_exact(base)
    if not any(normal):
        return None
    d = len(normal)
    # orient(simplex, q) == (-1)^(d-1) * N0 . (q - p0); outward means
    # the visible sign, so flip N0 onto the visible side.
    flip = facet.plane.vis_sign * (-1 if (d - 1) % 2 else 1)
    normal = [flip * c for c in normal]
    denom_lcm = 1
    for c in normal:
        denom_lcm = denom_lcm * c.denominator // math.gcd(denom_lcm, c.denominator)
    ints = [int(c * denom_lcm) for c in normal]
    g = 0
    for v in ints:
        g = math.gcd(g, abs(v))
    ints = [v // g for v in ints]
    offset = sum(
        Fraction(n) * Fraction(float(x)) for n, x in zip(ints, points[facet.indices[0]])
    )
    return tuple(ints), offset


def merge_coplanar_facets(facets: Sequence, points: np.ndarray) -> list[MergedFacet]:
    """Group simplicial hull facets into geometric faces.

    Two facets belong to the same face iff they share the same exact
    outward supporting hyperplane *and* are connected through shared
    ridges within that plane.  Zero-volume facets (an SoS artefact of
    duplicated or affinely dependent hull points) are absorbed into an
    adjacent face whose plane exactly contains all their vertices;
    groups that never find such a neighbour are reported with
    ``degenerate=True``.
    """
    from .simplex import facet_ridges

    points = np.asarray(points, dtype=np.float64)
    keyed: dict[tuple, list] = {}
    flats: list = []
    plane_of: dict[int, tuple] = {}
    for f in facets:
        key = _exact_outward_plane(f, points)
        if key is None:
            flats.append(f)
        else:
            keyed.setdefault(key, []).append(f)
            plane_of[f.fid] = key

    # Ridge adjacency restricted to same-plane facets.
    out: list[MergedFacet] = []
    group_of_fid: dict[int, MergedFacet] = {}
    for (normal, offset), members in sorted(
        keyed.items(), key=lambda kv: (kv[0][0], kv[0][1])
    ):
        by_ridge: dict[frozenset, list] = {}
        for f in members:
            for r in facet_ridges(f.indices):
                by_ridge.setdefault(r, []).append(f.fid)
        adj: dict[int, set[int]] = {f.fid: set() for f in members}
        for pair in by_ridge.values():
            for a in pair:
                adj[a].update(b for b in pair if b != a)
        seen: set[int] = set()
        by_fid = {f.fid: f for f in members}
        for f in members:
            if f.fid in seen:
                continue
            stack, comp = [f.fid], []
            seen.add(f.fid)
            while stack:
                cur = stack.pop()
                comp.append(cur)
                for nxt in adj[cur]:
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append(nxt)
            comp_facets = [by_fid[fid] for fid in comp]
            merged = MergedFacet(
                vertices=tuple(sorted({i for g in comp_facets for i in g.indices})),
                fids=tuple(sorted(comp)),
                normal=normal,
                offset=offset,
                members=comp_facets,
            )
            out.append(merged)
            for fid in comp:
                group_of_fid[fid] = merged

    # Absorb zero-volume facets into a ridge-adjacent coplanar face.
    leftovers: list = []
    for f in flats:
        ridges = set(facet_ridges(f.indices))
        home = None
        for g in out:
            if any(set(r) <= set(m.indices) for r in ridges for m in g.members):
                if all(_on_plane(points[i], g.normal, g.offset) for i in f.indices):
                    home = g
                    break
        if home is not None:
            home.vertices = tuple(sorted(set(home.vertices) | set(f.indices)))
            home.fids = tuple(sorted(set(home.fids) | {f.fid}))
            home.members.append(f)
        else:
            leftovers.append(f)
    if leftovers:
        out.append(
            MergedFacet(
                vertices=tuple(sorted({i for f in leftovers for i in f.indices})),
                fids=tuple(sorted(f.fid for f in leftovers)),
                degenerate=True,
                members=list(leftovers),
            )
        )
    return out


def _on_plane(p, normal: tuple[int, ...], offset: Fraction) -> bool:
    return sum(Fraction(n) * Fraction(float(x)) for n, x in zip(normal, p)) == offset
