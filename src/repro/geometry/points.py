"""Reproducible synthetic point workloads.

The paper evaluates no datasets (it is a theory paper), so every
experiment in EXPERIMENTS.md runs on the seeded generators below.  They
cover the canonical hull regimes:

* ``uniform_ball`` -- expected hull size O(n^{(d-1)/(d+1)}): most points
  end up interior, the classic "easy" case;
* ``on_sphere`` -- every point extreme: hull size n, the hard case that
  stresses the O(n log n) work bound for d <= 3;
* ``uniform_cube`` -- polylog expected hull size;
* degenerate layouts (grids, coplanar/collinear sets) that exercise the
  exact predicate fallback and the Section 6 corner configuration space.

All generators take an integer ``seed`` and return float64 ``(n, d)``
arrays; identical seeds give identical workloads across runs.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "rng_for",
    "uniform_ball",
    "uniform_cube",
    "on_sphere",
    "on_circle",
    "gaussian",
    "on_paraboloid",
    "integer_grid",
    "coplanar_3d",
    "collinear_cluster",
    "anisotropic",
    "figure1_points",
    "moment_curve",
    "two_clusters",
]


def rng_for(seed: int) -> np.random.Generator:
    """The single entry point for randomness in workload generation."""
    return np.random.default_rng(seed)


def uniform_ball(n: int, d: int, seed: int = 0) -> np.ndarray:
    """``n`` points uniform in the unit d-ball (Muller's trick)."""
    rng = rng_for(seed)
    x = rng.standard_normal((n, d))
    norms = np.linalg.norm(x, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    radii = rng.random((n, 1)) ** (1.0 / d)
    return x / norms * radii


def uniform_cube(n: int, d: int, seed: int = 0) -> np.ndarray:
    """``n`` points uniform in [-1, 1]^d."""
    return rng_for(seed).uniform(-1.0, 1.0, size=(n, d))


def on_sphere(n: int, d: int, seed: int = 0) -> np.ndarray:
    """``n`` points uniform on the unit (d-1)-sphere; all extreme."""
    rng = rng_for(seed)
    x = rng.standard_normal((n, d))
    norms = np.linalg.norm(x, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return x / norms


def on_circle(n: int, seed: int = 0, jitter: float = 0.0) -> np.ndarray:
    """``n`` 2D points on the unit circle at random angles, optionally
    radially jittered by up to ``jitter`` (inward)."""
    rng = rng_for(seed)
    theta = rng.random(n) * 2.0 * np.pi
    r = 1.0 - rng.random(n) * jitter
    return np.column_stack([r * np.cos(theta), r * np.sin(theta)])


def gaussian(n: int, d: int, seed: int = 0) -> np.ndarray:
    """Standard normal cloud (hull size Theta(log^{(d-1)/2} n))."""
    return rng_for(seed).standard_normal((n, d))


def on_paraboloid(n: int, seed: int = 0, span: float = 1.0) -> np.ndarray:
    """2D points lifted to the 3D paraboloid z = x^2 + y^2 -- the
    classic Delaunay-by-lifting workload."""
    rng = rng_for(seed)
    xy = rng.uniform(-span, span, size=(n, 2))
    z = (xy * xy).sum(axis=1)
    return np.column_stack([xy, z])


def integer_grid(side: int, d: int, seed: int = 0, shuffle: bool = True) -> np.ndarray:
    """All points of the integer grid {0..side-1}^d (heavily degenerate;
    decided exactly by the rational fallback)."""
    axes = [np.arange(side)] * d
    grid = np.stack(np.meshgrid(*axes, indexing="ij"), axis=-1).reshape(-1, d)
    pts = grid.astype(np.float64)
    if shuffle:
        rng_for(seed).shuffle(pts)
    return pts


def coplanar_3d(n: int, seed: int = 0, n_planes: int = 3) -> np.ndarray:
    """3D points concentrated on a few random planes: many 4-coplanar
    subsets, the Section 6 degeneracy regime."""
    rng = rng_for(seed)
    pts = []
    for _ in range(n_planes):
        normal = rng.standard_normal(3)
        normal /= np.linalg.norm(normal)
        basis = np.linalg.svd(normal[None, :])[2][1:]
        offset = rng.uniform(-1, 1)
        m = n // n_planes
        uv = rng.uniform(-1, 1, size=(m, 2))
        pts.append(uv @ basis + offset * normal)
    rest = n - sum(p.shape[0] for p in pts)
    if rest:
        pts.append(rng.uniform(-1, 1, size=(rest, 3)))
    out = np.vstack(pts)
    rng.shuffle(out)
    return out


def collinear_cluster(n: int, d: int, seed: int = 0, frac: float = 0.5) -> np.ndarray:
    """A cloud where ``frac`` of the points lie on one line through the
    cloud (3+ collinear degeneracies)."""
    rng = rng_for(seed)
    k = int(n * frac)
    direction = rng.standard_normal(d)
    direction /= np.linalg.norm(direction)
    line = np.linspace(-1, 1, k)[:, None] * direction[None, :]
    cloud = rng.uniform(-1, 1, size=(n - k, d))
    out = np.vstack([line, cloud])
    rng.shuffle(out)
    return out


def anisotropic(n: int, d: int, seed: int = 0, ratio: float = 100.0) -> np.ndarray:
    """Squashed ball: one axis stretched by ``ratio`` -- skews visibility
    geometry and predicate conditioning."""
    pts = uniform_ball(n, d, seed)
    pts[:, 0] *= ratio
    return pts


def figure1_points() -> tuple[np.ndarray, list[str]]:
    """The ten labelled points of the paper's Figure 1 (2D), in a
    concrete coordinate realisation consistent with the figure: the
    initial hull u-v-w-x-y-z-t followed by a, b, c added in
    lexicographical order.

    Returns the (10, 2) array and the point labels, index-aligned.
    Labels: indices 0..6 are u, v, w, x, y, z, t (the initial hull in
    counterclockwise order); 7, 8, 9 are a, b, c.
    """
    pts = np.array(
        [
            [-5.0, 1.0],    # u  (upper left)
            [-4.0, -2.0],   # v  (lower left)
            [-2.0, -3.0],   # w
            [0.0, -3.4],    # x
            [2.0, -3.0],    # y
            [4.0, -2.0],    # z
            [5.0, 1.5],     # t  (upper right)
            [2.2, -3.7],    # a  (visible from x-y and y-z only)
            [-0.5, -3.6],   # b  (visible from w-x, x-y, and later x-a)
            [1.0, -5.2],    # c  (visible from everything between v and z)
        ]
    )
    labels = ["u", "v", "w", "x", "y", "z", "t", "a", "b", "c"]
    return pts, labels


def moment_curve(n: int, d: int, seed: int = 0, span: float = 1.0) -> np.ndarray:
    """``n`` points on the moment curve ``t -> (t, t^2, ..., t^d)``.

    Their hull is a *cyclic polytope* -- the maximiser of facet count by
    the upper bound theorem, Theta(n^{floor(d/2)}) facets -- the workload
    that exercises the first term of the paper's work bound
    ``O(n^{floor(d/2)} + n log n)`` (Theorem 5.4).  Parameters ``t`` are
    drawn uniformly from ``[-span, span]`` so instances are in general
    position; points are returned in random order.
    """
    rng = rng_for(seed)
    t = rng.uniform(-span, span, size=n)
    pts = np.column_stack([t**k for k in range(1, d + 1)])
    rng.shuffle(pts)
    return pts


def two_clusters(n: int, d: int, seed: int = 0, separation: float = 10.0) -> np.ndarray:
    """Two well-separated Gaussian clusters -- hull facets concentrate
    on the 'waist' between them; exercises anisotropic conflict sets."""
    rng = rng_for(seed)
    half = n // 2
    a = rng.standard_normal((half, d))
    b = rng.standard_normal((n - half, d))
    b[:, 0] += separation
    out = np.vstack([a, b])
    rng.shuffle(out)
    return out
