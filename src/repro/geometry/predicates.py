"""Adaptive-exact geometric predicates.

Every predicate follows the classic *filtered* design: a fast
floating-point evaluation with a conservative forward error bound, and
an exact :mod:`fractions`-based fallback that is only taken when the
float result cannot be trusted.  Because IEEE doubles convert to
:class:`~fractions.Fraction` exactly, the fallback decides *exactly the
input that was given* -- degeneracies (zero returns) are real, not
round-off artifacts.

Counters on :class:`PredicateStats` let the experiment harness account
for how often the exact path fires (one of the ablations in DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from repro.runtime.atomics import ShardedCounter

from .linalg import det_with_error_bound, sign_exact

__all__ = [
    "PredicateStats",
    "STATS",
    "orient",
    "orient_exact",
    "orient_exact_combo",
    "in_circle",
]


class PredicateStats:
    """Global counters for predicate evaluations (reset between runs).

    Hull runs under :class:`~repro.runtime.executors.ThreadExecutor` or
    the chaos executor bump these from worker threads, so each counter
    is a :class:`~repro.runtime.atomics.ShardedCounter` (per-thread
    shards, merged on read) rather than a plain ``int`` whose ``+=``
    read-modify-write loses concurrent updates.  Reads are exact at
    quiescent points (no predicate calls in flight), which is when the
    tests and the experiment harness look.
    """

    __slots__ = ("_float", "_exact", "_sos")

    def __init__(self) -> None:
        self._float = ShardedCounter()
        self._exact = ShardedCounter()
        self._sos = ShardedCounter()

    # -- increment API (used by the predicate kernel) ----------------------

    def count_float(self, k: int = 1) -> None:
        self._float.add(k)

    def count_exact(self, k: int = 1) -> None:
        self._exact.add(k)

    def count_sos(self, k: int = 1) -> None:
        self._sos.add(k)

    # -- read API (merged totals) ------------------------------------------

    @property
    def float_calls(self) -> int:
        return self._float.value

    @property
    def exact_calls(self) -> int:
        return self._exact.value

    @property
    def sos_calls(self) -> int:
        """Symbolic-perturbation sign evaluations (see geometry.perturb)."""
        return self._sos.value

    def reset(self) -> None:
        self._float.reset()
        self._exact.reset()
        self._sos.reset()

    def snapshot(self) -> dict[str, int]:
        return {
            "float_calls": self.float_calls,
            "exact_calls": self.exact_calls,
            "sos_calls": self.sos_calls,
        }


#: Module-level statistics instance shared by all predicates.
STATS = PredicateStats()


def _lifted_rows(simplex: np.ndarray, query) -> list[list]:
    """Edge-vector rows for the orientation determinant, with the
    subtractions done over Fractions: forming differences in floating
    point first would round away exactly the tiny components the exact
    fallback exists to decide."""
    from fractions import Fraction

    base = [Fraction(float(x)) for x in simplex[0]]
    d = len(base)
    rows = [
        [Fraction(float(p[j])) - base[j] for j in range(d)] for p in simplex[1:]
    ]
    rows.append([Fraction(float(query[j])) - base[j] for j in range(d)])
    return rows


def orient(simplex: np.ndarray, query) -> int:
    """Orientation of ``query`` relative to the hyperplane through the
    ``d`` points of ``simplex`` (a ``(d, d)`` array) in R^d.

    Returns the sign (-1, 0, +1) of ``det([s_1 - s_0; ...; s_{d-1} - s_0;
    q - s_0])``.  ``+1`` means ``query`` is on the positive side under
    the right-handed convention; ``0`` means exactly on the hyperplane.
    """
    simplex = np.asarray(simplex, dtype=np.float64)
    q = np.asarray(query, dtype=np.float64)
    m = np.vstack([simplex[1:] - simplex[0], (q - simplex[0])[None, :]])
    det, err = det_with_error_bound(m)
    STATS.count_float()
    if det > err:
        return 1
    if det < -err:
        return -1
    STATS.count_exact()
    return sign_exact(_lifted_rows(simplex, q))


def orient_exact(simplex, query) -> int:
    """Exact orientation (always takes the rational path)."""
    simplex = np.asarray(simplex, dtype=np.float64)
    STATS.count_exact()
    return sign_exact(_lifted_rows(simplex, query))


def orient_exact_combo(simplex, combo_points, weights=None) -> int:
    """Exact orientation of the affine combination ``sum w_i c_i`` of
    ``combo_points`` relative to the hyperplane through ``simplex``.

    The combination is evaluated in rational arithmetic, *not* rounded
    to a float point first: on nearly-flat inputs a facet plane can pass
    within ~1e-17 of the true centroid, closer than the rounding error
    of computing that centroid in float64 -- so the exact sign of the
    rounded point is the wrong question.  ``weights`` defaults to the
    uniform combination (the centroid).
    """
    from fractions import Fraction

    simplex = np.asarray(simplex, dtype=np.float64)
    combo_points = np.asarray(combo_points, dtype=np.float64)
    k, d = combo_points.shape
    if weights is None:
        weights = [Fraction(1, k)] * k
    weights = [Fraction(w) for w in weights]
    if sum(weights) != 1:
        raise ValueError("combination weights must sum to 1 (affine)")
    base = [Fraction(float(x)) for x in simplex[0]]
    q = [
        sum(w * Fraction(float(c[j])) for w, c in zip(weights, combo_points))
        for j in range(d)
    ]
    rows = [
        [Fraction(float(p[j])) - base[j] for j in range(d)] for p in simplex[1:]
    ]
    rows.append([q[j] - base[j] for j in range(d)])
    STATS.count_exact()
    return sign_exact(rows)


def in_circle(a, b, c, q) -> int:
    """In-circle predicate for 2D Delaunay: +1 if ``q`` is strictly
    inside the circumcircle of the counterclockwise triangle ``(a, b,
    c)``, -1 if strictly outside, 0 if cocircular.

    For a clockwise triangle the sign is flipped, matching the standard
    lifted-determinant definition.
    """
    pts = [np.asarray(p, dtype=np.float64) for p in (a, b, c, q)]
    qv = pts[3]
    rows = []
    for p in pts[:3]:
        dx, dy = float(p[0] - qv[0]), float(p[1] - qv[1])
        rows.append([dx, dy, dx * dx + dy * dy])
    m = np.array(rows)
    det, err = det_with_error_bound(m)
    STATS.count_float()
    if det > err:
        return 1
    if det < -err:
        return -1
    STATS.count_exact()
    # Rebuild the rows exactly from the original coordinates.
    from fractions import Fraction

    exact_rows = []
    qx, qy = Fraction(float(qv[0])), Fraction(float(qv[1]))
    for p in pts[:3]:
        dx = Fraction(float(p[0])) - qx
        dy = Fraction(float(p[1])) - qy
        exact_rows.append([dx, dy, dx * dx + dy * dy])
    return sign_exact(exact_rows)
