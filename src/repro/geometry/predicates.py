"""Adaptive-exact geometric predicates.

Every predicate follows the classic *filtered* design: a fast
floating-point evaluation with a conservative forward error bound, and
an exact :mod:`fractions`-based fallback that is only taken when the
float result cannot be trusted.  Because IEEE doubles convert to
:class:`~fractions.Fraction` exactly, the fallback decides *exactly the
input that was given* -- degeneracies (zero returns) are real, not
round-off artifacts.

Counters on :class:`PredicateStats` let the experiment harness account
for how often the exact path fires (one of the ablations in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .linalg import det_with_error_bound, sign_exact

__all__ = ["PredicateStats", "STATS", "orient", "orient_exact", "in_circle"]


@dataclass
class PredicateStats:
    """Global counters for predicate evaluations (reset between runs)."""

    float_calls: int = 0
    exact_calls: int = 0

    def reset(self) -> None:
        self.float_calls = 0
        self.exact_calls = 0

    def snapshot(self) -> dict[str, int]:
        return {"float_calls": self.float_calls, "exact_calls": self.exact_calls}


#: Module-level statistics instance shared by all predicates.
STATS = PredicateStats()


def _lifted_rows(simplex: np.ndarray, query) -> list[list]:
    """Edge-vector rows for the orientation determinant, with the
    subtractions done over Fractions: forming differences in floating
    point first would round away exactly the tiny components the exact
    fallback exists to decide."""
    from fractions import Fraction

    base = [Fraction(float(x)) for x in simplex[0]]
    d = len(base)
    rows = [
        [Fraction(float(p[j])) - base[j] for j in range(d)] for p in simplex[1:]
    ]
    rows.append([Fraction(float(query[j])) - base[j] for j in range(d)])
    return rows


def orient(simplex: np.ndarray, query) -> int:
    """Orientation of ``query`` relative to the hyperplane through the
    ``d`` points of ``simplex`` (a ``(d, d)`` array) in R^d.

    Returns the sign (-1, 0, +1) of ``det([s_1 - s_0; ...; s_{d-1} - s_0;
    q - s_0])``.  ``+1`` means ``query`` is on the positive side under
    the right-handed convention; ``0`` means exactly on the hyperplane.
    """
    simplex = np.asarray(simplex, dtype=np.float64)
    q = np.asarray(query, dtype=np.float64)
    m = np.vstack([simplex[1:] - simplex[0], (q - simplex[0])[None, :]])
    det, err = det_with_error_bound(m)
    STATS.float_calls += 1
    if det > err:
        return 1
    if det < -err:
        return -1
    STATS.exact_calls += 1
    return sign_exact(_lifted_rows(simplex, q))


def orient_exact(simplex, query) -> int:
    """Exact orientation (always takes the rational path)."""
    simplex = np.asarray(simplex, dtype=np.float64)
    STATS.exact_calls += 1
    return sign_exact(_lifted_rows(simplex, query))


def in_circle(a, b, c, q) -> int:
    """In-circle predicate for 2D Delaunay: +1 if ``q`` is strictly
    inside the circumcircle of the counterclockwise triangle ``(a, b,
    c)``, -1 if strictly outside, 0 if cocircular.

    For a clockwise triangle the sign is flipped, matching the standard
    lifted-determinant definition.
    """
    pts = [np.asarray(p, dtype=np.float64) for p in (a, b, c, q)]
    qv = pts[3]
    rows = []
    for p in pts[:3]:
        dx, dy = float(p[0] - qv[0]), float(p[1] - qv[1])
        rows.append([dx, dy, dx * dx + dy * dy])
    m = np.array(rows)
    det, err = det_with_error_bound(m)
    STATS.float_calls += 1
    if det > err:
        return 1
    if det < -err:
        return -1
    STATS.exact_calls += 1
    # Rebuild the rows exactly from the original coordinates.
    from fractions import Fraction

    exact_rows = []
    qx, qy = Fraction(float(qv[0])), Fraction(float(qv[1]))
    for p in pts[:3]:
        dx = Fraction(float(p[0])) - qx
        dy = Fraction(float(p[1])) - qy
        exact_rows.append([dx, dy, dx * dx + dy * dy])
    return sign_exact(exact_rows)
