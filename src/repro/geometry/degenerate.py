"""Adversarial degenerate corpus: seeded generators for every input
class the paper's general-position assumption excludes.

Each family is small by design (the SoS fallback does big-rational
polynomial arithmetic per resolved tie) and *exactly* degenerate where
it claims to be: integer coordinates are used wherever ties must be
exact, because small integers are exactly representable in float64 --
``[3.0, 4.0]`` really is on the circle ``x^2 + y^2 = 25``, with no
rounding to hide behind.  The ``near-ties`` families are the opposite
trap: offsets of ~1e-13 that are *not* zero but sit far inside naive
float tolerance, so a correct filtered predicate must escalate to exact
arithmetic and then find a nonzero sign.

Consumers: the test suite (tests/hull/test_degenerate_corpus.py,
test_robust_degenerate.py, test_sos_hull.py), ``tools/fuzz.py
--degenerate``, ``benchmarks/bench_degenerate.py`` (EXPERIMENTS E18),
and ``repro certify --family ...``.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable

import numpy as np

from .points import uniform_ball

__all__ = ["DegenerateFamily", "CORPUS", "corpus_names", "corpus_case"]


def _rng(seed: int, label: str) -> np.random.Generator:
    """Independent stream per (seed, label) pair, so e.g. the duplicate
    picks and the final shuffle of one family never share a stream."""
    return np.random.default_rng([int(seed), zlib.crc32(label.encode())])


@dataclass(frozen=True)
class DegenerateFamily:
    """One adversarial input family.

    ``full_dim`` tells tests what the escalation ladder should do: a
    full-dimensional family must succeed on the float or exact rung
    (zero signs are interpretable as "on the plane, not visible"), while
    a non-full-dimensional one must fail both and succeed on the SoS
    rung without ever reaching joggle.
    """

    name: str
    d: int
    full_dim: bool
    description: str
    make: Callable[[int], np.ndarray]

    def __call__(self, seed: int = 0) -> np.ndarray:
        pts = np.asarray(self.make(seed), dtype=np.float64)
        # Seeded shuffle: degeneracy handling must not depend on the
        # order the generator happened to emit.
        perm = _rng(seed, f"degenerate:{self.name}").permutation(len(pts))
        return pts[perm]


def _duplicates_2d(seed: int) -> np.ndarray:
    base = uniform_ball(10, 2, seed=seed)
    rng = _rng(seed, "dup2")
    picks = rng.integers(0, len(base), size=6)
    return np.vstack([base, base[picks]])


def _duplicates_3d(seed: int) -> np.ndarray:
    base = uniform_ball(10, 3, seed=seed)
    rng = _rng(seed, "dup3")
    picks = rng.integers(0, len(base), size=6)
    return np.vstack([base, base[picks]])


def _all_coincident(seed: int) -> np.ndarray:
    p = _rng(seed, "coincident").normal(size=3)
    return np.tile(p, (8, 1))


def _collinear_3d(seed: int) -> np.ndarray:
    # Affine rank 1, *exactly*: integer direction and offset, so the
    # products are exactly representable and the points really are on
    # one line (a float direction would round each point off the line,
    # making the cloud technically full-dimensional).
    rng = _rng(seed, "line3")
    direction = rng.integers(1, 6, size=3).astype(np.float64)
    offset = rng.integers(-5, 6, size=3).astype(np.float64)
    t = np.arange(10, dtype=np.float64)
    return t[:, None] * direction[None, :] + offset[None, :]


def _near_collinear_3d(seed: int) -> np.ndarray:
    # Points computed as t*direction + offset in float: rounding pushes
    # each point ~1e-16 off the line, so the cloud is full-dimensional
    # but so flat that every facet plane passes closer to the centroid
    # than the centroid's own float rounding error.  Regression family
    # for the inverted-vis_sign bug: orienting facets against the
    # rounded centroid (instead of the exact affine combination)
    # silently dropped hull vertices here.
    rng = _rng(seed, "nearline3")
    direction = rng.normal(size=3)
    t = np.arange(10, dtype=np.float64)
    return t[:, None] * direction[None, :] + rng.normal(size=3)[None, :]


def _coplanar_3d(seed: int) -> np.ndarray:
    # Affine rank 2: a 2D cloud embedded in the z = 0 plane of R^3.
    flat = np.zeros((12, 3))
    flat[:, :2] = uniform_ball(12, 2, seed=seed)
    return flat


def _grid_2d(seed: int) -> np.ndarray:
    del seed  # the grid is the grid; the family shuffle adds the seed
    return np.array(
        [[float(x), float(y)] for x in range(4) for y in range(4)]
    )


def _grid_3d(seed: int) -> np.ndarray:
    del seed
    return np.array(
        [
            [float(x), float(y), float(z)]
            for x in range(3)
            for y in range(3)
            for z in range(3)
        ]
    )


def _cocircular(seed: int) -> np.ndarray:
    # Twelve integer points exactly on x^2 + y^2 = 25 (Pythagorean
    # 3-4-5), plus the center: every hull vertex tie is exact.
    del seed
    ring = [
        (5, 0), (-5, 0), (0, 5), (0, -5),
        (3, 4), (3, -4), (-3, 4), (-3, -4),
        (4, 3), (4, -3), (-4, 3), (-4, -3),
    ]
    return np.array([[float(x), float(y)] for x, y in ring] + [[0.0, 0.0]])


def _cospherical(seed: int) -> np.ndarray:
    # Thirty integer points exactly on x^2 + y^2 + z^2 = 9: the six axis
    # points and all signed permutations of (1, 2, 2).
    del seed
    pts = set()
    for axis in range(3):
        for s in (3, -3):
            p = [0, 0, 0]
            p[axis] = s
            pts.add(tuple(p))
    import itertools

    for perm in set(itertools.permutations((1, 2, 2))):
        for signs in itertools.product((1, -1), repeat=3):
            pts.add(tuple(s * v for s, v in zip(signs, perm)))
    return np.array(sorted(pts), dtype=np.float64)


def _near_ties_2d(seed: int) -> np.ndarray:
    grid = _grid_2d(0)
    jitter = _rng(seed, "near2").normal(size=grid.shape) * 1e-13
    return grid + jitter


def _near_ties_3d(seed: int) -> np.ndarray:
    grid = _grid_3d(0)
    jitter = _rng(seed, "near3").normal(size=grid.shape) * 1e-13
    return grid + jitter


CORPUS: dict[str, DegenerateFamily] = {
    f.name: f
    for f in [
        DegenerateFamily(
            "duplicates-2d", 2, True,
            "random 2D cloud with 6 exact duplicate points", _duplicates_2d,
        ),
        DegenerateFamily(
            "duplicates-3d", 3, True,
            "random 3D cloud with 6 exact duplicate points", _duplicates_3d,
        ),
        DegenerateFamily(
            "all-coincident", 3, False,
            "eight copies of a single 3D point (affine rank 0)", _all_coincident,
        ),
        DegenerateFamily(
            "collinear-3d", 3, False,
            "ten integer points exactly on one line in R^3 (affine rank 1)",
            _collinear_3d,
        ),
        DegenerateFamily(
            "near-collinear-3d", 3, True,
            "ten points ~1e-16 off a common line (full-rank but ultra-flat)",
            _near_collinear_3d,
        ),
        DegenerateFamily(
            "coplanar-3d", 3, False,
            "twelve points in the z=0 plane of R^3 (affine rank 2)", _coplanar_3d,
        ),
        DegenerateFamily(
            "grid-2d", 2, True,
            "4x4 integer grid (maximal collinear ties)", _grid_2d,
        ),
        DegenerateFamily(
            "grid-3d", 3, True,
            "3x3x3 integer grid (collinear and coplanar ties)", _grid_3d,
        ),
        DegenerateFamily(
            "cocircular", 2, True,
            "12 integer points exactly on x^2+y^2=25, plus the center",
            _cocircular,
        ),
        DegenerateFamily(
            "cospherical", 3, True,
            "30 integer points exactly on x^2+y^2+z^2=9", _cospherical,
        ),
        DegenerateFamily(
            "near-ties-2d", 2, True,
            "4x4 grid with ~1e-13 jitter (inside naive float tolerance)",
            _near_ties_2d,
        ),
        DegenerateFamily(
            "near-ties-3d", 3, True,
            "3x3x3 grid with ~1e-13 jitter (inside naive float tolerance)",
            _near_ties_3d,
        ),
    ]
}


def corpus_names() -> list[str]:
    """Family names, in registry order."""
    return list(CORPUS)


def corpus_case(name: str, seed: int = 0) -> np.ndarray:
    """Generate one seeded instance of a named family."""
    try:
        family = CORPUS[name]
    except KeyError:
        raise KeyError(
            f"unknown degenerate family {name!r}; choose from {corpus_names()}"
        ) from None
    return family(seed)
