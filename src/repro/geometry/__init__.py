"""Exact-arithmetic geometric substrate: predicates, hyperplanes,
facet/ridge value types, and seeded workload generators."""

from .degenerate import CORPUS, DegenerateFamily, corpus_case, corpus_names
from .hyperplane import Hyperplane
from .kernels import (
    KERNEL_STATS,
    BatchKernel,
    KernelStats,
    SignCache,
    filter_scale,
    orient_batch,
)
from .linalg import det_exact, det_with_error_bound, sign_exact
from .noisy import ADAPTIVE, NoisyKernel, parse_votes
from .points import (
    anisotropic,
    collinear_cluster,
    coplanar_3d,
    figure1_points,
    gaussian,
    integer_grid,
    moment_curve,
    on_circle,
    on_paraboloid,
    on_sphere,
    rng_for,
    two_clusters,
    uniform_ball,
    uniform_cube,
)
from .perturb import (
    MergedFacet,
    merge_coplanar_facets,
    orient_sos,
    sos_active,
    sos_mode,
)
from .predicates import STATS, in_circle, orient, orient_exact, orient_exact_combo
from .simplex import Facet, Ridge, facet_ridges

__all__ = [
    "CORPUS",
    "DegenerateFamily",
    "corpus_case",
    "corpus_names",
    "Hyperplane",
    "KERNEL_STATS",
    "BatchKernel",
    "KernelStats",
    "SignCache",
    "filter_scale",
    "orient_batch",
    "MergedFacet",
    "merge_coplanar_facets",
    "orient_sos",
    "sos_active",
    "sos_mode",
    "det_exact",
    "det_with_error_bound",
    "sign_exact",
    "ADAPTIVE",
    "NoisyKernel",
    "parse_votes",
    "STATS",
    "in_circle",
    "orient",
    "orient_exact",
    "orient_exact_combo",
    "Facet",
    "Ridge",
    "facet_ridges",
    "rng_for",
    "uniform_ball",
    "uniform_cube",
    "on_sphere",
    "on_circle",
    "gaussian",
    "on_paraboloid",
    "integer_grid",
    "coplanar_3d",
    "collinear_cluster",
    "anisotropic",
    "figure1_points",
    "moment_curve",
    "two_clusters",
]
