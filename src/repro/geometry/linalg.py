"""Small-matrix linear algebra used by the geometric predicate kernel.

The hull algorithms only ever need determinants and normals of matrices
whose side length is the (constant) ambient dimension ``d``, so none of
these routines try to be asymptotically clever.  What they do provide:

* a fast floating-point determinant with a conservative forward error
  bound (used as the *filter* stage of the adaptive predicates), and
* exact rational determinants via fraction-free Bareiss elimination
  (used as the *fallback* stage -- every Python float is exactly
  representable as a :class:`fractions.Fraction`, so the fallback is
  exact for any float input).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

import numpy as np

__all__ = [
    "det_with_error_bound",
    "det_exact",
    "sign_exact",
    "cofactor_normal",
    "cofactor_normal_exact",
    "solve_exact",
]

# Unit roundoff for IEEE-754 binary64.
_EPS = float(np.finfo(np.float64).eps)

# Smallest positive normal double, and the absolute spacing of the
# subnormal range (2^-1074).  A subnormal intermediate -- e.g. an LU
# multiplier ``row[k] / pivot`` when one entry is ~1e-308 -- is
# quantized at that *absolute* spacing rather than at relative
# precision eps, and subsequent multiplications amplify the absolute
# error by products of entry magnitudes.  A purely multiplicative
# ``eps * Hadamard`` bound never sees this (it can even underflow to
# exactly 0.0), so every bound below carries an additive scale-aware
# floor.
_TINY = float(np.finfo(np.float64).tiny)
_SUBNORMAL_SPACING = 5e-324


def det_with_error_bound(m: np.ndarray) -> tuple[float, float]:
    """Determinant of a small square matrix plus a forward error bound.

    Returns ``(det, err)`` such that the true determinant lies within
    ``det +/- err`` whenever the Gaussian elimination performed by LAPACK
    did not suffer catastrophic growth.  The bound is the classical
    entrywise one: ``err = c(n) * eps * prod_i ||row_i||_2`` derived from
    Hadamard's inequality, inflated by a generous constant so that it is
    safe in practice.  Callers must treat ``|det| <= err`` as "sign
    unknown" and fall back to :func:`sign_exact`.
    """
    # Envelope derivation, checked by `repro fpcheck` (atoms: ME = max
    # |entry|, AD/BC = the two n=2 product magnitudes, CM = the
    # cofactor envelope, DET = |det|).  The n>=3 committed constant
    # 16 n^3 2^(n-1) carries a 16x safety factor over the first-order
    # LAPACK model 108*ME*CM at n=3 (n^3 entry/elimination terms times
    # the 2^(n-1) pivoting growth PR 3's counterexample proved
    # necessary -- the old plain eps*Hadamard constant is the seeded
    # RPRFP001 regression fixture in tests/analyze/test_fpcheck.py):
    # repro: fp-bound: assume n in 2..3
    # repro: fp-bound: call det ~ DET err 108*ME*CM @n=3
    # repro: fp-bound: envelope err floor cof_max norms max_abs max_el
    # repro: fp-bound: guard norms
    m = np.asarray(m, dtype=np.float64)
    # repro: fp-bound: in m ~ ME
    n = m.shape[0]
    if n == 0:
        return 1.0, 0.0
    if n == 1:
        return float(m[0, 0]), 0.0
    if n == 2:
        a, b, c, d = m[0, 0], m[0, 1], m[1, 0], m[1, 1]
        ad = a * d
        bc = b * c
        # repro: fp-bound: bind ad ~ AD
        # repro: fp-bound: bind bc ~ BC
        det = ad - bc
        # repro: fp-bound: claim det <= 4*AD + 4*BC @n=2
        err = 4.0 * _EPS * (abs(ad) + abs(bc)) + 4.0 * _TINY
        return float(det), float(err)
    det = float(np.linalg.det(m))
    # repro: fp-bound: claim det <= 1728*ME*CM @n=3
    # Compute the Hadamard bound underflow-safely: factor each row's
    # largest magnitude out of its norm so the product of the scaled
    # norms stays O(1) and only the explicit max-product can underflow
    # (in which case the additive floor dominates anyway).
    row_max = np.abs(m).max(axis=1)
    scaled = m / np.where(row_max > 0.0, row_max, 1.0)[:, None]
    scaled_norms = np.sqrt((scaled * scaled).sum(axis=1))
    # Hadamard-style envelope for the *cofactors*: drop the smallest
    # row norm.  A plain eps * prod(all row norms) bound is wrong --
    # on [[1,0,0],[2,5985,1805],[1.5,0,0]] elimination mixes the large
    # row into the two small (mutually near-parallel) rows, and the
    # cancellation error there scales with the large row's norm
    # squared, ~900x the full Hadamard product.  The derivative of det
    # in entry (i, j) is a cofactor, bounded by the product of the
    # other rows' norms; the backward error in each entry is
    # c(n) * eps * growth * max|entry|.
    with np.errstate(over="ignore"):
        norms = row_max * scaled_norms
    i_small = int(np.argmin(norms))
    keep = [k for k in range(n) if k != i_small]
    cof_max = float(np.prod(row_max[keep])) * float(np.prod(scaled_norms[keep]))
    # Subnormal floor, two mechanisms: (a) a subnormal *entry* can be
    # flushed/lost inside LAPACK's scaled elimination, costing up to
    # tiny times a product of n-1 other entries; (b) a subnormal LU
    # *multiplier* is quantized at the absolute subnormal spacing,
    # amplified by up to n entry magnitudes.  (inf is fine: it just
    # means "always take the exact path" for astronomically scaled
    # inputs.)
    max_el = float(row_max.max(initial=0.0))
    max_abs = max(1.0, max_el)
    with np.errstate(over="ignore"):
        amp = np.float64(max_abs) ** (n - 1)
        floor = float(n**3 * (_TINY * amp + _SUBNORMAL_SPACING * amp * max_abs))
    # c(n) = 16 n^3 entry-count/elimination constants, 2^(n-1) the
    # partial-pivoting growth factor.
    err = 16.0 * n * n * n * (2.0 ** (n - 1)) * _EPS * max_el * cof_max + floor
    return det, err


def _to_fraction_rows(rows: Sequence[Sequence]) -> list[list[Fraction]]:
    return [[Fraction(x) for x in row] for row in rows]


def det_exact(rows: Sequence[Sequence]) -> Fraction:
    """Exact determinant via fraction-free Bareiss elimination.

    Accepts ints, Fractions, or floats (floats are converted exactly).
    Runs in ``O(n^3)`` Fraction operations; intended for the small
    constant-dimension matrices of geometric predicates.
    """
    a = _to_fraction_rows(rows)
    n = len(a)
    if n == 0:
        return Fraction(1)
    sign = 1
    prev = Fraction(1)
    for k in range(n - 1):
        if a[k][k] == 0:
            # Pivot: find a row below with a nonzero entry in column k.
            for i in range(k + 1, n):
                if a[i][k] != 0:
                    a[k], a[i] = a[i], a[k]
                    sign = -sign
                    break
            else:
                return Fraction(0)
        pivot = a[k][k]
        for i in range(k + 1, n):
            for j in range(k + 1, n):
                a[i][j] = (a[i][j] * pivot - a[i][k] * a[k][j]) / prev
            a[i][k] = Fraction(0)
        prev = pivot
    return sign * a[n - 1][n - 1]


def sign_exact(rows: Sequence[Sequence]) -> int:
    """Exact sign (-1, 0, +1) of the determinant of ``rows``."""
    d = det_exact(rows)
    if d > 0:
        return 1
    if d < 0:
        return -1
    return 0


def cofactor_normal(points: np.ndarray) -> np.ndarray:
    """Normal of the hyperplane through ``d`` points in R^d.

    ``points`` is a ``(d, d)`` array.  The normal's ``j``-th component is
    the signed cofactor ``(-1)^j det(M_j)`` where ``M`` is the
    ``(d-1, d)`` matrix of edge vectors ``points[i] - points[0]`` and
    ``M_j`` drops column ``j``.  The result is unnormalised; its sign
    convention is fixed by the caller against a reference point.
    """
    points = np.asarray(points, dtype=np.float64)
    d = points.shape[1]
    if points.shape[0] != d:
        raise ValueError(f"need exactly d={d} points, got {points.shape[0]}")
    if d == 1:
        return np.array([1.0])
    edges = points[1:] - points[0]  # (d-1, d)
    if d == 2:
        e = edges[0]
        return np.array([-e[1], e[0]])
    if d == 3:
        return np.cross(edges[0], edges[1])
    normal = np.empty(d)
    cols = np.arange(d)
    for j in range(d):
        minor = edges[:, cols != j]
        normal[j] = (-1.0) ** j * np.linalg.det(minor)
    return normal


def cofactor_normal_exact(points: Sequence[Sequence]) -> list[Fraction]:
    """Exact version of :func:`cofactor_normal` over Fractions."""
    pts = _to_fraction_rows(points)
    d = len(pts[0])
    if len(pts) != d:
        raise ValueError(f"need exactly d={d} points, got {len(pts)}")
    if d == 1:
        return [Fraction(1)]
    edges = [[pts[i][j] - pts[0][j] for j in range(d)] for i in range(1, d)]
    normal: list[Fraction] = []
    for j in range(d):
        minor = [[row[c] for c in range(d) if c != j] for row in edges]
        normal.append((-1) ** j * det_exact(minor))
    return normal


def solve_exact(rows: Sequence[Sequence], rhs: Sequence) -> list[Fraction]:
    """Solve a small linear system exactly (Gaussian elimination with
    partial pivoting over Fractions).  Raises ``ZeroDivisionError`` on a
    singular matrix."""
    a = _to_fraction_rows(rows)
    b = [Fraction(x) for x in rhs]
    n = len(a)
    for k in range(n):
        pivot_row = next((i for i in range(k, n) if a[i][k] != 0), None)
        if pivot_row is None:
            raise ZeroDivisionError("singular matrix in solve_exact")
        a[k], a[pivot_row] = a[pivot_row], a[k]
        b[k], b[pivot_row] = b[pivot_row], b[k]
        inv = 1 / a[k][k]
        for i in range(k + 1, n):
            f = a[i][k] * inv
            if f == 0:
                continue
            for j in range(k, n):
                a[i][j] -= f * a[k][j]
            b[i] -= f * b[k]
    x = [Fraction(0)] * n
    for i in range(n - 1, -1, -1):
        s = b[i] - sum(a[i][j] * x[j] for j in range(i + 1, n))
        x[i] = s / a[i][i]
    return x
