"""Small-matrix linear algebra used by the geometric predicate kernel.

The hull algorithms only ever need determinants and normals of matrices
whose side length is the (constant) ambient dimension ``d``, so none of
these routines try to be asymptotically clever.  What they do provide:

* a fast floating-point determinant with a conservative forward error
  bound (used as the *filter* stage of the adaptive predicates), and
* exact rational determinants via fraction-free Bareiss elimination
  (used as the *fallback* stage -- every Python float is exactly
  representable as a :class:`fractions.Fraction`, so the fallback is
  exact for any float input).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

import numpy as np

__all__ = [
    "det_with_error_bound",
    "det_exact",
    "sign_exact",
    "cofactor_normal",
    "cofactor_normal_exact",
    "solve_exact",
]

# Unit roundoff for IEEE-754 binary64.
_EPS = float(np.finfo(np.float64).eps)


def det_with_error_bound(m: np.ndarray) -> tuple[float, float]:
    """Determinant of a small square matrix plus a forward error bound.

    Returns ``(det, err)`` such that the true determinant lies within
    ``det +/- err`` whenever the Gaussian elimination performed by LAPACK
    did not suffer catastrophic growth.  The bound is the classical
    entrywise one: ``err = c(n) * eps * prod_i ||row_i||_2`` derived from
    Hadamard's inequality, inflated by a generous constant so that it is
    safe in practice.  Callers must treat ``|det| <= err`` as "sign
    unknown" and fall back to :func:`sign_exact`.
    """
    m = np.asarray(m, dtype=np.float64)
    n = m.shape[0]
    if n == 0:
        return 1.0, 0.0
    if n == 1:
        return float(m[0, 0]), 0.0
    if n == 2:
        a, b, c, d = m[0, 0], m[0, 1], m[1, 0], m[1, 1]
        det = a * d - b * c
        err = 4.0 * _EPS * (abs(a * d) + abs(b * c))
        return float(det), float(err)
    if n == 3:
        det = float(np.linalg.det(m))
    else:
        det = float(np.linalg.det(m))
    row_norms = np.sqrt((m * m).sum(axis=1))
    hadamard = float(np.prod(row_norms))
    err = 16.0 * n * n * _EPS * hadamard
    return det, err


def _to_fraction_rows(rows: Sequence[Sequence]) -> list[list[Fraction]]:
    return [[Fraction(x) for x in row] for row in rows]


def det_exact(rows: Sequence[Sequence]) -> Fraction:
    """Exact determinant via fraction-free Bareiss elimination.

    Accepts ints, Fractions, or floats (floats are converted exactly).
    Runs in ``O(n^3)`` Fraction operations; intended for the small
    constant-dimension matrices of geometric predicates.
    """
    a = _to_fraction_rows(rows)
    n = len(a)
    if n == 0:
        return Fraction(1)
    sign = 1
    prev = Fraction(1)
    for k in range(n - 1):
        if a[k][k] == 0:
            # Pivot: find a row below with a nonzero entry in column k.
            for i in range(k + 1, n):
                if a[i][k] != 0:
                    a[k], a[i] = a[i], a[k]
                    sign = -sign
                    break
            else:
                return Fraction(0)
        pivot = a[k][k]
        for i in range(k + 1, n):
            for j in range(k + 1, n):
                a[i][j] = (a[i][j] * pivot - a[i][k] * a[k][j]) / prev
            a[i][k] = Fraction(0)
        prev = pivot
    return sign * a[n - 1][n - 1]


def sign_exact(rows: Sequence[Sequence]) -> int:
    """Exact sign (-1, 0, +1) of the determinant of ``rows``."""
    d = det_exact(rows)
    if d > 0:
        return 1
    if d < 0:
        return -1
    return 0


def cofactor_normal(points: np.ndarray) -> np.ndarray:
    """Normal of the hyperplane through ``d`` points in R^d.

    ``points`` is a ``(d, d)`` array.  The normal's ``j``-th component is
    the signed cofactor ``(-1)^j det(M_j)`` where ``M`` is the
    ``(d-1, d)`` matrix of edge vectors ``points[i] - points[0]`` and
    ``M_j`` drops column ``j``.  The result is unnormalised; its sign
    convention is fixed by the caller against a reference point.
    """
    points = np.asarray(points, dtype=np.float64)
    d = points.shape[1]
    if points.shape[0] != d:
        raise ValueError(f"need exactly d={d} points, got {points.shape[0]}")
    if d == 1:
        return np.array([1.0])
    edges = points[1:] - points[0]  # (d-1, d)
    if d == 2:
        e = edges[0]
        return np.array([-e[1], e[0]])
    if d == 3:
        return np.cross(edges[0], edges[1])
    normal = np.empty(d)
    cols = np.arange(d)
    for j in range(d):
        minor = edges[:, cols != j]
        normal[j] = (-1.0) ** j * np.linalg.det(minor)
    return normal


def cofactor_normal_exact(points: Sequence[Sequence]) -> list[Fraction]:
    """Exact version of :func:`cofactor_normal` over Fractions."""
    pts = _to_fraction_rows(points)
    d = len(pts[0])
    if len(pts) != d:
        raise ValueError(f"need exactly d={d} points, got {len(pts)}")
    if d == 1:
        return [Fraction(1)]
    edges = [[pts[i][j] - pts[0][j] for j in range(d)] for i in range(1, d)]
    normal: list[Fraction] = []
    for j in range(d):
        minor = [[row[c] for c in range(d) if c != j] for row in edges]
        normal.append((-1) ** j * det_exact(minor))
    return normal


def solve_exact(rows: Sequence[Sequence], rhs: Sequence) -> list[Fraction]:
    """Solve a small linear system exactly (Gaussian elimination with
    partial pivoting over Fractions).  Raises ``ZeroDivisionError`` on a
    singular matrix."""
    a = _to_fraction_rows(rows)
    b = [Fraction(x) for x in rhs]
    n = len(a)
    for k in range(n):
        pivot_row = next((i for i in range(k, n) if a[i][k] != 0), None)
        if pivot_row is None:
            raise ZeroDivisionError("singular matrix in solve_exact")
        a[k], a[pivot_row] = a[pivot_row], a[k]
        b[k], b[pivot_row] = b[pivot_row], b[k]
        inv = 1 / a[k][k]
        for i in range(k + 1, n):
            f = a[i][k] * inv
            if f == 0:
                continue
            for j in range(k, n):
                a[i][j] -= f * a[k][j]
            b[i] -= f * b[k]
    x = [Fraction(0)] * n
    for i in range(n - 1, -1, -1):
        s = b[i] - sum(a[i][j] * x[j] for j in range(i + 1, n))
        x[i] = s / a[i][i]
    return x
