"""Noisy predicate oracles: seeded sign flips with majority-vote repair.

Goodrich & Sridhar ("Optimal Parallel Algorithms for Convex Hulls in 2D
and 3D under Noisy Primitive Operations") study incremental hulls when
every primitive comparison *lies* with some fixed probability ``p`` --
a failure mode orthogonal to the crash/stall/kill plans of
:mod:`repro.runtime.faults`: the component answers promptly, and
wrongly.  This module reproduces that regime for the visibility
predicate (the unit of work Theorem 5.4 counts, and by far the dominant
predicate traffic of every hull in this repo).

:class:`NoisyKernel` is a *kernel mode*: passed as the ``kernel=``
argument of any hull driver it wraps the chosen base engine
(``"scalar"`` per-facet sweeps or the ``"batch"`` einsum kernel) and
perturbs each visibility decision after the true sign is computed.
Three properties make the wrapper honest and testable:

* **Deterministic noise.** Every flip is a pure function of
  ``(seed, site, attempt)`` via the keyed blake2b idiom of
  :func:`repro.runtime.faults.unit_hash_attempt`: ``site`` names the
  decision (facet identity ``x`` point rank, plus an ``epoch`` that the
  escalation ladder bumps per retry so re-runs draw fresh errors) and
  ``attempt`` is the vote index.  A noisy run is exactly reproducible
  from its seed, independent of schedule or executor.
* **Independent repetitions.** Distinct vote indices hash
  independently (pinned by a regression test on ``unit_hash_attempt``),
  which is the hypothesis the paper's repetition strategy needs: with
  ``votes=k`` the kernel re-asks each question ``k`` times and returns
  the majority, driving the per-decision error from ``p`` to
  ``O(exp(-k))``.  ``votes="adaptive"`` instead runs the classic
  gambler's-ruin stopping rule -- keep voting until one side leads by
  ``L`` with ``(p/(1-p))^L <= confidence`` -- so easy decisions stay
  cheap and hard ones escalate, capped at ``max_votes``.
* **Exact identity at p=0.** With ``p == 0.0`` the wrapper returns the
  base engine's masks untouched (no voting, no counters), so a zero-
  noise run is bit-identical to the unwrapped kernel -- facet sets,
  fids, counters, and the work/span DAG (the differential suite pins
  this for both base engines).

Scope (honest): only the *visibility/conflict* predicate is wrapped --
the ``visible_mask`` / ``visible_blocks`` traffic that decides conflict
sets.  Plane construction, initial-simplex rank selection, validation
and certification stay exact; in particular the independent
:mod:`repro.hull.certify` checker shares no code with this module and
is what catches hulls the noise corrupted (the certificate-gated rung
of :func:`repro.hull.robust.robust_hull`).  Work accounting stays
scalar-equivalent: ``counters.visibility_tests`` counts *questions*,
while the per-vote overhead (the paper's work blow-up) lands in this
kernel's own counters, surfaced through ``exec_stats.kernel_stats``.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..runtime.atomics import Mutex, ShardedCounter
from ..runtime.faults import unit_hash_attempt

__all__ = ["ADAPTIVE", "NoisyKernel", "parse_votes"]

#: Sentinel for the adaptive vote-escalation mode.
ADAPTIVE = "adaptive"

#: Fault-kind tag in the hash key (namespaces noisy coins away from the
#: crash/stall/... coins a chaos plan may draw on overlapping sites).
FLIP = "flip"


def parse_votes(text) -> int | str:
    """Parse a ``votes`` value from user input: a positive odd int or
    the string ``"adaptive"``."""
    if isinstance(text, str) and text.strip().lower() == ADAPTIVE:
        return ADAPTIVE
    try:
        votes = int(text)
    except (TypeError, ValueError):
        raise ValueError(
            f"votes must be a positive odd integer or 'adaptive', got {text!r}"
        ) from None
    return votes


class NoisyKernel:
    """A seeded lying oracle over a base visibility engine.

    Parameters
    ----------
    p:
        Per-invocation flip probability, ``0 <= p < 0.5`` (at 0.5 the
        oracle carries no information and majority vote cannot help;
        the paper's analysis assumes the same bound).
    votes:
        Fixed repetition count (positive odd int; even counts are
        rejected so a majority always exists) or :data:`ADAPTIVE`.
    seed:
        Noise seed.  Same seed, same site, same attempt -> same flip,
        across processes and executors.
    base:
        The engine that computes the *true* answers: ``"scalar"`` or
        ``"batch"`` (see :class:`~repro.hull.common.FacetFactory`).
    epoch:
        Retry epoch, folded into every site string: the robust ladder
        bumps it per attempt so an escalated re-run draws independent
        errors instead of deterministically replaying the old ones.
    confidence:
        Adaptive mode's target per-decision error bound (gambler's-ruin
        lead ``L`` is the smallest with ``(p/(1-p))^L <= confidence``).
    max_votes:
        Hard cap on adaptive voting per decision (kept odd); at the cap
        the simple majority is returned.
    """

    def __init__(
        self,
        p: float,
        votes: int | str = 1,
        seed: int = 0,
        base: str = "scalar",
        epoch: int = 0,
        confidence: float = 1e-3,
        max_votes: int = 33,
    ):
        p = float(p)
        if not 0.0 <= p < 0.5:
            raise ValueError(f"flip probability must be in [0, 0.5), got {p}")
        if votes != ADAPTIVE:
            votes = parse_votes(votes)
            if votes < 1 or votes % 2 == 0:
                raise ValueError(f"votes must be a positive odd integer, got {votes}")
        if base not in ("scalar", "batch"):
            raise ValueError(f"unknown base kernel {base!r}; use 'scalar' or 'batch'")
        if not 0.0 < confidence < 0.5:
            raise ValueError(f"confidence must be in (0, 0.5), got {confidence}")
        if max_votes < 1:
            raise ValueError(f"max_votes must be >= 1, got {max_votes}")
        self.p = p
        self.votes = votes
        self.seed = int(seed)
        self.base = base
        self.epoch = int(epoch)
        self.confidence = float(confidence)
        self.max_votes = int(max_votes) | 1  # keep odd: no majority ties
        self._decisions = ShardedCounter()
        self._votes_cast = ShardedCounter()
        self._flips = ShardedCounter()
        self._overruled = ShardedCounter()
        self._mutex = Mutex()
        self._peak_votes = 0

    # -- ladder plumbing ---------------------------------------------------

    def spawn(self, votes: int | str | None = None, epoch: int | None = None) -> "NoisyKernel":
        """A fresh kernel (fresh counters) with the same noise model,
        optionally at a different vote level / retry epoch -- what the
        robust ladder uses to escalate."""
        return NoisyKernel(
            p=self.p,
            votes=self.votes if votes is None else votes,
            seed=self.seed,
            base=self.base,
            epoch=self.epoch if epoch is None else epoch,
            confidence=self.confidence,
            max_votes=self.max_votes,
        )

    def rung_label(self) -> str:
        """The escalation-ladder rung name (epoch deliberately excluded:
        retries of the same level share the label and are told apart by
        the ladder's attempt counter)."""
        return f"noisy[p={self.p:g},votes={self.votes}]"

    def escalation_levels(self) -> list[int | str]:
        """Vote levels the certificate-gated ladder climbs through,
        starting from the requested one: fixed ``k`` escalates to
        ``2k+1`` and then to adaptive; adaptive has nowhere to climb
        (the next rung is the exact noise-free oracle)."""
        if self.votes == ADAPTIVE:
            return [ADAPTIVE]
        return [self.votes, 2 * self.votes + 1, ADAPTIVE]

    def lead_needed(self) -> int:
        """Gambler's-ruin stopping lead for the adaptive mode: the
        smallest ``L`` with ``(p/(1-p))^L <= confidence`` (a biased
        random walk that must drift ``L`` net steps the wrong way to
        fool the vote)."""
        if self.p <= 0.0:
            return 1
        ratio = self.p / (1.0 - self.p)  # < 1 because p < 0.5
        return max(1, math.ceil(math.log(self.confidence) / math.log(ratio)))

    # -- the lying oracle --------------------------------------------------

    def flip_fires(self, site: str, attempt: int) -> bool:
        """The pure coin: does invocation ``attempt`` of ``site`` lie?"""
        return unit_hash_attempt(self.seed, FLIP, f"{self.epoch}/{site}", attempt) < self.p

    def observe(self, site: str, truth: bool, attempt: int) -> bool:
        """One noisy invocation of the visibility primitive."""
        if self.flip_fires(site, attempt):
            self._flips.add(1)
            return not truth
        return truth

    def decide(self, site: str, truth: bool) -> bool:
        """The repaired decision: majority (or adaptive) vote over
        independent noisy invocations.  ``truth`` is the exact answer
        the base engine computed; the caller never sees it directly
        once ``p > 0``."""
        truth = bool(truth)
        if self.p == 0.0:
            return truth
        self._decisions.add(1)
        if self.votes == ADAPTIVE:
            lead = self.lead_needed()
            tally = 0
            cast = 0
            while cast < self.max_votes:
                tally += 1 if self.observe(site, truth, cast) else -1
                cast += 1
                if abs(tally) >= lead:
                    break
            out = tally > 0
        else:
            cast = self.votes
            ayes = sum(
                1 for j in range(cast) if self.observe(site, truth, j)
            )
            out = 2 * ayes > cast
        self._votes_cast.add(cast)
        if cast > self._peak_votes:
            with self._mutex:
                self._peak_votes = max(self._peak_votes, cast)
        if out != truth:
            self._overruled.add(1)
        return out

    def noisy_masks(
        self,
        indices_list: Sequence[tuple[int, ...]],
        cand_list: Sequence[np.ndarray],
        masks: Sequence[np.ndarray],
    ) -> list[np.ndarray]:
        """Perturb a ragged block of true visibility masks (the output
        shape of ``visible_blocks`` / per-facet ``visible_mask`` calls).
        Input masks are never mutated; with ``p == 0`` they are returned
        as-is (bit-identity fast path)."""
        if self.p == 0.0:
            return list(masks)
        out: list[np.ndarray] = []
        for idx, cands, mask in zip(indices_list, cand_list, masks):  # repro: noqa: RPRHOT001 - one keyed hash per (site, attempt); scalar by definition
            if not cands.size:
                out.append(mask)
                continue
            fkey = "-".join(str(i) for i in idx)
            noisy = np.fromiter(
                (
                    self.decide(f"{fkey}:{int(r)}", bool(v))
                    for r, v in zip(cands, mask)
                ),
                dtype=bool,
                count=int(cands.size),
            )  # repro: noqa: RPRHOT001 - the lying oracle is per-invocation by definition
            out.append(noisy)
        return out

    # -- reporting ---------------------------------------------------------

    @property
    def decisions(self) -> int:
        return self._decisions.value

    @property
    def votes_cast(self) -> int:
        return self._votes_cast.value

    @property
    def flips(self) -> int:
        return self._flips.value

    @property
    def overruled(self) -> int:
        """Decisions where the repaired answer still differs from the
        truth (the residual error majority voting failed to fix)."""
        return self._overruled.value

    def vote_overhead(self) -> float:
        """Mean invocations per decision (the paper's work blow-up)."""
        return self.votes_cast / max(1, self.decisions)

    def snapshot(self) -> dict:
        return {
            "noise_p": self.p,
            "noise_votes": self.votes,
            "noise_seed": self.seed,
            "noise_epoch": self.epoch,
            "noisy_decisions": self.decisions,
            "noisy_votes_cast": self.votes_cast,
            "noisy_flips": self.flips,
            "noisy_overruled": self.overruled,
            "noisy_peak_votes": self._peak_votes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"NoisyKernel(p={self.p!r}, votes={self.votes!r}, "
                f"seed={self.seed}, base={self.base!r}, epoch={self.epoch})")
