"""Ablations over the design choices called out in DESIGN.md:

* execution discipline (serial DFS vs rounds vs shuffled rounds) --
  same facets, different constant factors;
* multimap implementation inside the threaded hull (CAS vs TAS);
* predicate strategy: adaptive filter vs always-exact (the filter is
  the reason random float inputs never touch rational arithmetic).
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.geometry import integer_grid, uniform_ball
from repro.geometry.predicates import STATS
from repro.hull import parallel_hull, sequential_hull
from repro.runtime import RoundExecutor, SerialExecutor, ThreadExecutor

N = 2048


@pytest.mark.parametrize(
    "executor",
    [SerialExecutor(), RoundExecutor(), RoundExecutor(seed=1)],
    ids=["serial", "rounds", "rounds-shuffled"],
)
def test_executor_choice(benchmark, executor):
    pts = uniform_ball(N, 2, seed=1)
    order = np.random.default_rng(2).permutation(N)
    run = run_once(benchmark, parallel_hull, pts, order=order.copy(), executor=executor)
    benchmark.extra_info["facets"] = len(run.facets)
    benchmark.extra_info["depth"] = run.dependence_depth()


@pytest.mark.parametrize("mm", ["cas", "tas"])
def test_threaded_multimap_choice(benchmark, mm):
    pts = uniform_ball(N, 2, seed=1)
    order = np.random.default_rng(2).permutation(N)
    run = run_once(
        benchmark,
        parallel_hull,
        pts,
        order=order.copy(),
        executor=ThreadExecutor(2),
        multimap=mm,
    )
    benchmark.extra_info["multimap"] = mm
    benchmark.extra_info["facets"] = len(run.facets)


@pytest.mark.parametrize(
    "gen,label",
    [(lambda: uniform_ball(N, 2, seed=3), "random-floats"),
     (lambda: integer_grid(45, 2, seed=3), "integer-grid")],
    ids=["random-floats", "integer-grid"],
)
def test_exact_fallback_rate(benchmark, gen, label):
    """How often does the adaptive filter fail over to rational
    arithmetic?  ~0 for generic floats, nonzero for engineered
    degeneracy -- the justification for the filtered design."""
    pts = gen()

    def run():
        STATS.reset()
        sequential_hull(pts, seed=4)
        return STATS.snapshot()

    snap = run_once(benchmark, run)
    benchmark.extra_info["workload"] = label
    benchmark.extra_info["float_calls"] = snap["float_calls"]
    benchmark.extra_info["exact_calls"] = snap["exact_calls"]
    benchmark.extra_info["exact_rate"] = round(
        snap["exact_calls"] / max(1, snap["float_calls"]), 6
    )
