"""E3 (Theorems 5.4/5.5, span): rounds = O(log n) on the
round-synchronous executor; work-span span grows polylogarithmically.

``rounds / log2(n)`` and ``span / log2(n)^2`` (binary-forking shape)
should stay bounded across sizes.
"""

import math

import pytest

from benchmarks.conftest import run_once
from repro.geometry import on_sphere
from repro.hull import parallel_hull

SIZES = [256, 1024, 4096]


@pytest.mark.parametrize("n", SIZES)
def test_rounds_scaling(benchmark, n):
    pts = on_sphere(n, 2, seed=n + 7)
    run = run_once(benchmark, parallel_hull, pts, seed=5)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["rounds"] = run.exec_stats.rounds
    benchmark.extra_info["rounds_per_log2n"] = round(
        run.exec_stats.rounds / math.log2(n), 2
    )
    benchmark.extra_info["max_round_width"] = run.exec_stats.max_round_width


@pytest.mark.parametrize("n", SIZES)
def test_workspan_span_scaling(benchmark, n):
    pts = on_sphere(n, 2, seed=n + 9)
    run = run_once(benchmark, parallel_hull, pts, seed=6)
    s = run.tracker.span
    benchmark.extra_info["n"] = n
    benchmark.extra_info["work"] = run.tracker.work
    benchmark.extra_info["span"] = s
    benchmark.extra_info["span_per_log2n_sq"] = round(s / math.log2(n) ** 2, 2)
    benchmark.extra_info["parallelism"] = round(run.tracker.parallelism, 1)
