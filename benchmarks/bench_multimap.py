"""E11 (Algorithms 4/5): throughput of the concurrent multimap
implementations -- CAS (Algorithm 4) vs TAS (Algorithm 5) vs the plain
dict reference, single-threaded and under real thread contention."""

import threading

import pytest

from repro.runtime import CASMultimap, DictMultimap, TASMultimap

N_KEYS = 2000


def make(kind):
    if kind == "dict":
        return DictMultimap()
    if kind == "cas":
        return CASMultimap(capacity=8 * N_KEYS)
    return TASMultimap(capacity=8 * N_KEYS)


@pytest.mark.parametrize("kind", ["dict", "cas", "tas"])
def test_insert_pairs_single_thread(benchmark, kind):
    def run():
        m = make(kind)
        for k in range(N_KEYS):
            m.insert_and_set(k, "a")
        losers = 0
        for k in range(N_KEYS):
            if not m.insert_and_set(k, "b"):
                losers += 1
                m.get_value(k, "b")
        return losers

    losers = benchmark(run)
    benchmark.extra_info["keys"] = N_KEYS
    assert losers == N_KEYS


@pytest.mark.parametrize("kind", ["cas", "tas"])
def test_insert_pairs_two_threads(benchmark, kind):
    def run():
        m = make(kind)
        results = {"A": 0, "B": 0}

        def worker(tag):
            lost = 0
            for k in range(N_KEYS):
                if not m.insert_and_set(k, tag):
                    lost += 1
            results[tag] = lost

        t1 = threading.Thread(target=worker, args=("A",))
        t2 = threading.Thread(target=worker, args=("B",))
        t1.start(); t2.start(); t1.join(); t2.join()
        return results["A"] + results["B"]

    total_losses = benchmark(run)
    benchmark.extra_info["keys"] = N_KEYS
    # Theorem A.1 aggregate: exactly one loser per key.
    assert total_losses == N_KEYS
