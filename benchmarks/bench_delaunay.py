"""E14: Delaunay by lifted parallel hull -- construction cost and depth,
with scipy's Qhull wrapper as the external reference point (expect
scipy to win wall-clock by a large constant: it is compiled C)."""

import math

import pytest
from scipy.spatial import Delaunay as ScipyDelaunay

from benchmarks.conftest import run_once
from repro.apps import delaunay
from repro.geometry import uniform_ball

SIZES = [256, 1024]


@pytest.mark.parametrize("n", SIZES)
def test_lifted_parallel_delaunay(benchmark, n):
    pts = uniform_ball(n, 2, seed=n)
    res = run_once(benchmark, delaunay, pts, seed=1)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["triangles"] = res.n_triangles
    benchmark.extra_info["depth"] = res.dependence_depth()
    benchmark.extra_info["depth_per_log2n"] = round(
        res.dependence_depth() / math.log2(n), 2
    )


@pytest.mark.parametrize("n", SIZES)
def test_scipy_reference(benchmark, n):
    pts = uniform_ball(n, 2, seed=n)
    tri = run_once(benchmark, ScipyDelaunay, pts)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["triangles"] = len(tri.simplices)


@pytest.mark.parametrize("n", [512])
def test_results_agree(benchmark, n):
    pts = uniform_ball(n, 2, seed=7)

    def both():
        ours = delaunay(pts, seed=2).triangles
        scipy_tris = {frozenset(s) for s in ScipyDelaunay(pts).simplices}
        return ours == scipy_tris

    agree = run_once(benchmark, both)
    benchmark.extra_info["agree"] = agree
    assert agree


@pytest.mark.parametrize("n", SIZES)
def test_direct_bowyer_watson(benchmark, n):
    """The direct incremental Delaunay ([17]'s lineage): depth and
    in-circle-test accounting alongside the lifted path."""
    from repro.apps.bowyer_watson import bowyer_watson

    pts = uniform_ball(n, 2, seed=n)
    res = run_once(benchmark, bowyer_watson, pts, seed=3)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["triangles"] = res.n_triangles
    benchmark.extra_info["depth"] = res.dependence_depth()
    benchmark.extra_info["in_circle_tests"] = res.in_circle_tests


@pytest.mark.parametrize("n", SIZES)
def test_parallel_delaunay_direct(benchmark, n):
    """Algorithm 3's machinery on triangles: depth and equivalence-grade
    test counts for the direct parallel Delaunay."""
    from repro.apps.parallel_delaunay import parallel_delaunay

    pts = uniform_ball(n, 2, seed=n)
    res = run_once(benchmark, parallel_delaunay, pts, seed=4)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["triangles"] = res.n_triangles
    benchmark.extra_info["depth"] = res.dependence_depth()
    benchmark.extra_info["rounds"] = res.rounds
