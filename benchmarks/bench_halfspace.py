"""E8 (Section 7, half-spaces): incremental half-plane intersection --
dual-hull vs direct incremental wall-clock, and dependence depth
staying logarithmic."""

import math

import pytest

from benchmarks.conftest import run_once
from repro.apps import halfplane_intersection, incremental_halfplanes
from repro.configspace.spaces import tangent_halfplanes

SIZES = [128, 512, 2048]


@pytest.mark.parametrize("n", SIZES)
def test_dual_hull_method(benchmark, n):
    normals, offsets = tangent_halfplanes(n, seed=n)
    res = run_once(benchmark, halfplane_intersection, normals, offsets, seed=1)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["vertices"] = len(res.vertex_pairs)
    benchmark.extra_info["depth"] = res.dependence_depth()
    benchmark.extra_info["depth_per_log2n"] = round(
        res.dependence_depth() / math.log2(n), 2
    )


@pytest.mark.parametrize("n", SIZES)
def test_direct_incremental(benchmark, n):
    normals, offsets = tangent_halfplanes(n, seed=n)
    res = run_once(benchmark, incremental_halfplanes, normals, offsets, seed=1)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["vertices"] = len(res.vertex_pairs)
    benchmark.extra_info["depth"] = res.dependence_depth()
    benchmark.extra_info["depth_per_log2n"] = round(
        res.dependence_depth() / math.log2(n), 2
    )


@pytest.mark.parametrize("n", SIZES)
def test_parallel_edge_driven(benchmark, n):
    """Algorithm 3's machinery on the half-plane vertex space."""
    from repro.apps.parallel_halfplanes import parallel_halfplanes

    normals, offsets = tangent_halfplanes(n, seed=n)
    res = run_once(benchmark, parallel_halfplanes, normals, offsets, seed=2)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["vertices"] = len(res.vertex_pairs)
    benchmark.extra_info["depth"] = res.dependence_depth()
    benchmark.extra_info["rounds"] = res.rounds
