"""E13: speedup.  Two views: the model view (simulated greedy schedules
over the recorded work-span DAG, where near-linear speedup holds until
P approaches W/S) and the wall-clock view on real threads (GIL-bound on
CPython; reported for honesty, see DESIGN.md's substitution table)."""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.geometry import on_sphere
from repro.hull import parallel_hull
from repro.runtime import ThreadExecutor

N = 2000


@pytest.fixture(scope="module")
def recorded_run():
    pts = on_sphere(N, 2, seed=10)
    return parallel_hull(pts, seed=11)


@pytest.mark.parametrize("p", [1, 4, 16, 64])
def test_simulated_greedy_schedule(benchmark, recorded_run, p):
    sched = benchmark(recorded_run.tracker.simulate_greedy, p)
    w = recorded_run.tracker.work
    benchmark.extra_info["P"] = p
    benchmark.extra_info["T_P"] = sched.makespan
    benchmark.extra_info["speedup"] = round(w / sched.makespan, 2)
    benchmark.extra_info["parallelism_limit"] = round(
        recorded_run.tracker.parallelism, 1
    )


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_real_threads_wallclock(benchmark, workers):
    pts = on_sphere(N, 2, seed=10)
    order = np.random.default_rng(1).permutation(N)
    run = run_once(
        benchmark,
        parallel_hull,
        pts,
        order=order.copy(),
        executor=ThreadExecutor(workers),
        multimap="cas",
    )
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["facets"] = len(run.facets)
