"""E17: fault-injection overhead and recovery behaviour.

Sweeps the injected crash rate over a fixed RoundExecutor hull instance
and records rounds-to-completion, rollbacks, and re-executed tasks --
the measurements behind the E17 entry in EXPERIMENTS.md.  Every run is
also asserted to reproduce the fault-free facet set, so the benchmark
doubles as a correctness soak.
"""

import pytest

from repro.runtime.chaos import chaos_hull_roundtrip

from .conftest import run_once

N, D, SEED = 400, 3, 11


@pytest.mark.parametrize("crash_rate", [0.0, 0.1, 0.2, 0.4])
def test_round_chaos_vs_crash_rate(benchmark, crash_rate):
    rep = run_once(
        benchmark, chaos_hull_roundtrip,
        n=N, d=D, seed=SEED, crash_rate=crash_rate, executor_kind="rounds",
    )
    assert rep["ok"], rep
    benchmark.extra_info.update({
        "crash_rate": crash_rate,
        "rounds": rep["rounds"],
        "baseline_rounds": rep["baseline_rounds"],
        "round_attempts": rep["round_attempts"],
        "rollbacks": rep["rollbacks"],
        "retried_tasks": rep["retries"],
        "tasks_executed": rep["tasks_executed"],
    })


@pytest.mark.parametrize("crash_rate", [0.0, 0.1, 0.2])
def test_thread_chaos_vs_crash_rate(benchmark, crash_rate):
    rep = run_once(
        benchmark, chaos_hull_roundtrip,
        n=150, d=2, seed=SEED, crash_rate=crash_rate,
        executor_kind="threads", n_workers=4,
    )
    assert rep["ok"], rep
    benchmark.extra_info.update({
        "crash_rate": crash_rate,
        "worker_deaths": rep["worker_deaths"],
        "retried_tasks": rep["retries"],
        "tasks_executed": rep["tasks_executed"],
    })
