"""E9 (Section 7, unit circles): incremental unit-disk intersection --
construction cost and logarithmic dependence depth."""

import math

import pytest

from benchmarks.conftest import run_once
from repro.apps import incremental_disk_intersection
from repro.configspace.spaces import clustered_unit_circles

SIZES = [64, 256, 1024]


@pytest.mark.parametrize("n", SIZES)
def test_disk_intersection(benchmark, n):
    centers = clustered_unit_circles(n, seed=n)
    res = run_once(benchmark, incremental_disk_intersection, centers, seed=2)
    assert not res.empty
    benchmark.extra_info["n"] = n
    benchmark.extra_info["boundary_arcs"] = len(res.boundary())
    benchmark.extra_info["arcs_created"] = len(res.arcs)
    benchmark.extra_info["depth"] = res.dependence_depth()
    benchmark.extra_info["depth_per_log2n"] = round(
        res.dependence_depth() / math.log2(n), 2
    )
