"""Shared helpers for the benchmark suite.

Every benchmark records the paper-relevant *shape* quantities (depth,
visibility tests, rounds, ...) in ``benchmark.extra_info`` so the
pytest-benchmark table doubles as the experiment log consumed by
EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark an expensive function with one round per measurement
    (incremental constructions are O(n log n); repeating them many
    times inside one measurement would only add noise)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=3, iterations=1)
