"""E1 (Theorems 1.1/4.2/5.3): dependence depth is O(log n) whp.

Regenerates the depth-vs-n series for d in {2, 3} on the uniform-ball
and on-sphere workloads.  ``extra_info`` carries depth, H_n, and the
empirical sigma = depth/H_n, which must stay bounded as n grows.
"""

import pytest

from benchmarks.conftest import run_once
from repro.configspace.theory import harmonic
from repro.geometry import on_sphere, uniform_ball
from repro.hull import parallel_hull

SIZES = [256, 1024, 4096]


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("d", [2, 3])
def test_depth_ball(benchmark, n, d):
    pts = uniform_ball(n, d, seed=n + d)
    run = run_once(benchmark, parallel_hull, pts, seed=1)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["d"] = d
    benchmark.extra_info["depth"] = run.dependence_depth()
    benchmark.extra_info["rounds"] = run.exec_stats.rounds
    benchmark.extra_info["H_n"] = round(harmonic(n), 2)
    benchmark.extra_info["sigma"] = round(run.dependence_depth() / harmonic(n), 2)


@pytest.mark.parametrize("n", SIZES)
def test_depth_sphere_2d(benchmark, n):
    pts = on_sphere(n, 2, seed=n)
    run = run_once(benchmark, parallel_hull, pts, seed=2)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["depth"] = run.dependence_depth()
    benchmark.extra_info["sigma"] = round(run.dependence_depth() / harmonic(n), 2)
