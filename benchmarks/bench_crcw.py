"""E3 (PRAM side): measured CRCW span of Algorithm 3 via the executable
PRAM primitives -- per-algorithm-round cost stays near-constant and the
normalized span is bounded (the O(log n log* n) shape)."""

import pytest

from benchmarks.conftest import run_once
from repro.analysis import crcw_span
from repro.geometry import on_sphere
from repro.hull import parallel_hull

SIZES = [256, 1024, 4096]


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("mode", ["approximate", "exact"])
def test_crcw_span(benchmark, n, mode):
    run = parallel_hull(on_sphere(n, 2, seed=n), seed=5)
    rep = run_once(benchmark, crcw_span, run, compaction=mode)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["algorithm_rounds"] = rep.algorithm_rounds
    benchmark.extra_info["pram_span"] = rep.span_rounds
    benchmark.extra_info["span_per_round"] = round(rep.span_per_round, 2)
    benchmark.extra_info["normalized"] = round(rep.normalized(), 2)
