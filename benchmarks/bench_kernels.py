"""E19: batched predicate kernels vs the scalar oracle -- standalone
runner.

Unlike the pytest-benchmark modules in this directory, this is a plain
script (the ``kernels-smoke`` CI job and ``repro bench-kernels`` both
drive it): it runs :func:`repro.analysis.kernelbench.run_kernel_bench`
and writes ``BENCH_kernels.json``, the artefact EXPERIMENTS.md's E19
table quotes.

    PYTHONPATH=src python benchmarks/bench_kernels.py            # full
    PYTHONPATH=src python benchmarks/bench_kernels.py --smoke    # CI
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.analysis.kernelbench import run_kernel_bench  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small sizes / few repeats: checks the harness, "
                         "not the speedup criterion")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--out", default="BENCH_kernels.json", metavar="PATH")
    args = ap.parse_args(argv)

    report = run_kernel_bench(seed=args.seed, smoke=args.smoke)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    s = report["summary"]
    print(f"wrote {args.out}")
    print(f"median speedup vs scalar: {s['median_speedup_vs_scalar']:.1f}x")
    if s["median_speedup_large_n"] is not None:
        print(f"median speedup (n >= 1e4): {s['median_speedup_large_n']:.1f}x "
              f"(criterion >= 3x: {'PASS' if s['criterion_3x_at_1e4'] else 'FAIL'})")
    print(f"max filter-fallback rate: {s['max_fallback_rate']:.4f}")
    print(f"hull facet sets identical: {s['all_hulls_identical']}")
    for n, ratio in s["hull_speedup_by_n"].items():
        print(f"end-to-end batch/scalar at n={n}: {ratio:.2f}x")
    for key, ratio in s["soa_speedup_by_n"].items():
        print(f"end-to-end soa/scalar at {key}: {ratio:.2f}x")
    if not report["smoke"]:
        print("soa >= 5x at n=1e5: "
              f"{'PASS' if s['criterion_soa_5x_at_1e5'] else 'FAIL'}")
    if not s["all_hulls_identical"]:
        return 1
    if not s["all_containment_checks_passed"]:
        return 1
    if not report["smoke"] and not s["criterion_3x_at_1e4"]:
        return 1
    if not report["smoke"] and not s["criterion_soa_5x_at_1e5"]:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
