"""E23: noisy-oracle hulls -- standalone runner.

Plain script (the ``noisy-smoke`` CI job and ``repro noisy`` both drive
the same campaign): runs
:func:`repro.analysis.noisybench.run_noisy_bench` and writes
``BENCH_noisy.json``, the artefact EXPERIMENTS.md's E23 tables quote --
output error vs flip rate p, vote-repetition overhead, and the
validator-power table (certificate false-accept rate over corrupted
and genuinely noisy hulls).

    PYTHONPATH=src python benchmarks/bench_noisy.py            # full
    PYTHONPATH=src python benchmarks/bench_noisy.py --smoke    # CI
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.analysis.noisybench import run_noisy_bench  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="tiny grid / single seeds: checks the harness, "
                         "not the >=500-certificate criterion")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--out", default="BENCH_noisy.json", metavar="PATH")
    args = ap.parse_args(argv)

    report = run_noisy_bench(seed=args.seed, smoke=args.smoke)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    s = report["summary"]
    print(f"wrote {args.out}")
    print(f"ladder runs match exact oracle: {s['all_ladder_runs_match_exact']}")
    print(f"validator: {s['validator_certificates_checked']} certificates, "
          f"{s['validator_false_accepts']} false accepts "
          f"(rate {s['validator_false_accept_rate']:.4f})")
    if not report["smoke"]:
        print(f">=500 certificates criterion: "
              f"{'PASS' if s['criterion_500_certs'] else 'FAIL'}")
    print("error vs p (votes=1):")
    for p, err in s["error_vs_p_votes1"].items():
        print(f"  p={p}: jaccard error {err:.4f}")
    print(f"vote overhead at p={max(report['ps'])}:")
    for v, oh in s["overhead_vs_votes_maxp"].items():
        print(f"  votes={v}: {oh:.2f}x")
    if not s["all_ladder_runs_match_exact"]:
        return 1
    if s["validator_false_accepts"]:
        return 1
    if not report["smoke"] and not s["criterion_500_certs"]:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
