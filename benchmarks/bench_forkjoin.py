"""E13 (binary-forking side): randomized work stealing over the
recorded hull DAG -- makespans against the T_P <= O(W/P + S) bound and
steal counts against O(P * S)."""

import pytest

from repro.geometry import on_sphere
from repro.hull import parallel_hull
from repro.runtime.forkjoin import simulate_work_stealing

N = 2000


@pytest.fixture(scope="module")
def tracker():
    return parallel_hull(on_sphere(N, 2, seed=20), seed=21).tracker


@pytest.mark.parametrize("p", [1, 2, 4, 8, 16])
def test_work_stealing_makespan(benchmark, tracker, p):
    stats = benchmark(simulate_work_stealing, tracker, p, 7)
    benchmark.extra_info["P"] = p
    benchmark.extra_info["makespan"] = stats.makespan
    benchmark.extra_info["speedup"] = round(tracker.work / stats.makespan, 2)
    benchmark.extra_info["steals"] = stats.steals
    benchmark.extra_info["steals_per_p_depth"] = round(
        stats.steals / (p * tracker.depth), 3
    )
