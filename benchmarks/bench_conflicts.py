"""E6 (Theorem 3.1, Clarkson--Shor): the measured total conflict size
of the incremental construction stays below the analytic bound
``n g^2 sum_i t_i / i^2`` with t_i <= i (2D hull size)."""

import pytest

from benchmarks.conftest import run_once
from repro.configspace.theory import clarkson_shor_conflict_bound
from repro.geometry import on_sphere, uniform_ball
from repro.hull import sequential_hull


@pytest.mark.parametrize("n", [512, 2048])
@pytest.mark.parametrize("gen", [uniform_ball, on_sphere], ids=["ball", "sphere"])
def test_total_conflict_size_2d(benchmark, n, gen):
    pts = gen(n, 2, seed=n)
    res = run_once(benchmark, sequential_hull, pts, seed=7)
    total = sum(len(f.conflicts) for f in res.created)
    bound = clarkson_shor_conflict_bound([float(i) for i in range(1, n + 1)], g=2)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["total_conflicts"] = total
    benchmark.extra_info["cs_bound"] = int(bound)
    benchmark.extra_info["measured_over_bound"] = round(total / bound, 3)
    assert total <= bound
