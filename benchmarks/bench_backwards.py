"""E1 (proof side): the backwards-analysis process of Theorem 4.2
executed on concrete instances -- mean tracked-path length against the
proof's g*H_n bound."""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.backwards import backwards_campaign
from repro.configspace.spaces import HullFacetSpace
from repro.geometry import uniform_ball


@pytest.mark.parametrize("n", [10, 14])
def test_backwards_paths(benchmark, n):
    pts = uniform_ball(n, 2, seed=n)
    space = HullFacetSpace(pts)
    stats = run_once(benchmark, backwards_campaign, space, list(range(n)), 60)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["mean_length"] = round(stats["mean_length"], 2)
    benchmark.extra_info["max_length"] = stats["max_length"]
    benchmark.extra_info["bound_gHn"] = round(stats["bound_gHn"], 2)
    assert stats["mean_length"] <= stats["bound_gHn"]
