"""E12: the incremental algorithms against classical baselines.

Shape expectations (the paper's motivation, not absolute numbers):
* monotone chain wins 2D raw wall-clock (it is a sort plus a scan);
* the randomized incremental hull is competitive with quickhull at the
  same facet machinery, and extends to any dimension;
* gift wrapping degrades on all-extreme inputs (O(n h));
* the incremental algorithm's work is within constants across regimes.
"""

import pytest

from benchmarks.conftest import run_once
from repro.baselines import chan, divide_and_conquer, gift_wrapping, monotone_chain, quickhull
from repro.geometry import on_sphere, uniform_ball
from repro.hull import parallel_hull, sequential_hull

N2 = 4096


@pytest.mark.parametrize(
    "algo",
    [monotone_chain, divide_and_conquer, chan],
    ids=["monotone_chain", "divide_and_conquer", "chan"],
)
def test_2d_ball_fast_baselines(benchmark, algo):
    pts = uniform_ball(N2, 2, seed=1)
    hull = run_once(benchmark, algo, pts)
    benchmark.extra_info["n"] = N2
    benchmark.extra_info["h"] = len(hull)


def test_2d_ball_gift_wrapping(benchmark):
    pts = uniform_ball(1024, 2, seed=1)  # O(nh): keep n moderate
    hull = run_once(benchmark, gift_wrapping, pts)
    benchmark.extra_info["n"] = 1024
    benchmark.extra_info["h"] = len(hull)


@pytest.mark.parametrize(
    "algo,name",
    [(sequential_hull, "incremental_seq"), (parallel_hull, "incremental_par")],
    ids=["incremental_seq", "incremental_par"],
)
def test_2d_ball_incremental(benchmark, algo, name):
    pts = uniform_ball(N2, 2, seed=1)
    res = run_once(benchmark, algo, pts, seed=2)
    benchmark.extra_info["n"] = N2
    benchmark.extra_info["tests"] = res.counters.visibility_tests


def test_2d_ball_quickhull(benchmark):
    pts = uniform_ball(N2, 2, seed=1)
    res = run_once(benchmark, quickhull, pts)
    benchmark.extra_info["n"] = N2
    benchmark.extra_info["tests"] = res.counters.visibility_tests


N3 = 1500


@pytest.mark.parametrize(
    "fn,name",
    [
        (lambda p: sequential_hull(p, seed=3), "incremental_seq"),
        (lambda p: parallel_hull(p, seed=3), "incremental_par"),
        (quickhull, "quickhull"),
    ],
    ids=["incremental_seq", "incremental_par", "quickhull"],
)
def test_3d_sphere(benchmark, fn, name):
    pts = on_sphere(N3, 3, seed=4)
    res = run_once(benchmark, fn, pts)
    benchmark.extra_info["n"] = N3
    benchmark.extra_info["facets"] = len(res.facets)
