"""E7 (Section 6, Lemmas 6.1/6.2): the corner configuration space on
degenerate 3D inputs -- exact active sets equal geometric hull corners,
and 4-support certification cost.

E18 (degeneracy robustness): for each adversarial corpus family, how
far up the float -> exact -> sos ladder the input climbs, what fraction
of predicate evaluations fall through the float filter to the exact
rational path, and what Simulation-of-Simplicity costs relative to the
adaptive predicates on the same input."""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.configspace import check_k_support
from repro.configspace.spaces import CornerConfigSpace
from repro.geometry import STATS
from repro.geometry.degenerate import corpus_case
from repro.geometry.perturb import sos_mode
from repro.hull import parallel_hull, robust_hull, validate_hull


def degenerate_cloud(n_extras: int) -> np.ndarray:
    base = np.array([[x, y, z] for x in (0.0, 2) for y in (0.0, 2) for z in (0.0, 2)])
    extras = np.array(
        [[1.0, 1, 0], [1, 0, 1], [0, 1, 1], [1, 1, 2], [1, 2, 1], [2, 1, 1]]
    )
    return np.vstack([base, extras[:n_extras]])


@pytest.mark.parametrize("n_extras", [0, 3, 6])
def test_lemma61_active_equals_corners(benchmark, n_extras):
    pts = degenerate_cloud(n_extras)
    space = CornerConfigSpace(pts)
    Y = list(range(len(pts)))
    active = run_once(benchmark, lambda: {c.key() for c in space.active_set(Y)})
    geometric = space.hull_corners(Y)
    benchmark.extra_info["points"] = len(pts)
    benchmark.extra_info["corners"] = len(active)
    benchmark.extra_info["lemma61_holds"] = active == geometric
    assert active == geometric


@pytest.mark.parametrize("n_extras", [0, 3])
def test_lemma62_four_support(benchmark, n_extras):
    pts = degenerate_cloud(n_extras)
    space = CornerConfigSpace(pts)
    report = run_once(benchmark, check_k_support, space, range(len(pts)), 4)
    benchmark.extra_info["points"] = len(pts)
    benchmark.extra_info["checked"] = report.checked
    benchmark.extra_info["max_support"] = report.max_support_size()
    assert report.ok


E18_FAMILIES = [
    "duplicates-3d",
    "coplanar-3d",
    "collinear-3d",
    "near-collinear-3d",
    "grid-3d",
    "cocircular",
    "cospherical",
    "near-ties-3d",
]


@pytest.mark.parametrize("family", E18_FAMILIES)
def test_e18_escalation_and_fire_rate(benchmark, family):
    """Ladder outcome + exact-path fire rate per corpus family."""
    pts = corpus_case(family, seed=0)

    def build():
        STATS.reset()
        res = robust_hull(pts, seed=0)
        return res, STATS.snapshot()

    res, snap = run_once(benchmark, build)
    total = snap["float_calls"] + snap["exact_calls"]
    benchmark.extra_info["family"] = family
    benchmark.extra_info["n"] = len(pts)
    benchmark.extra_info["mode"] = res.mode
    benchmark.extra_info["escalations"] = ",".join(res.escalations)
    benchmark.extra_info["facets"] = len(res.run.facets)
    benchmark.extra_info.update(snap)
    benchmark.extra_info["exact_fire_rate"] = round(
        snap["exact_calls"] / max(total, 1), 4
    )
    assert res.mode != "joggle"
    assert res.certificate is not None


@pytest.mark.parametrize("mode", ["adaptive", "sos"])
def test_e18_sos_overhead(benchmark, mode):
    """Same degenerate input (3x3x3 grid), adaptive predicates vs full
    Simulation of Simplicity: the ratio of the two rows is the symbolic
    perturbation overhead."""
    pts = corpus_case("grid-3d", seed=0)

    def build():
        if mode == "sos":
            with sos_mode():
                return parallel_hull(pts, seed=0)
        return parallel_hull(pts, seed=0)

    run = run_once(benchmark, build)
    validate_hull(run.facets, run.points)
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["facets"] = len(run.facets)
    benchmark.extra_info["vertices"] = len(run.vertex_indices())
