"""E7 (Section 6, Lemmas 6.1/6.2): the corner configuration space on
degenerate 3D inputs -- exact active sets equal geometric hull corners,
and 4-support certification cost."""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.configspace import check_k_support
from repro.configspace.spaces import CornerConfigSpace


def degenerate_cloud(n_extras: int) -> np.ndarray:
    base = np.array([[x, y, z] for x in (0.0, 2) for y in (0.0, 2) for z in (0.0, 2)])
    extras = np.array(
        [[1.0, 1, 0], [1, 0, 1], [0, 1, 1], [1, 1, 2], [1, 2, 1], [2, 1, 1]]
    )
    return np.vstack([base, extras[:n_extras]])


@pytest.mark.parametrize("n_extras", [0, 3, 6])
def test_lemma61_active_equals_corners(benchmark, n_extras):
    pts = degenerate_cloud(n_extras)
    space = CornerConfigSpace(pts)
    Y = list(range(len(pts)))
    active = run_once(benchmark, lambda: {c.key() for c in space.active_set(Y)})
    geometric = space.hull_corners(Y)
    benchmark.extra_info["points"] = len(pts)
    benchmark.extra_info["corners"] = len(active)
    benchmark.extra_info["lemma61_holds"] = active == geometric
    assert active == geometric


@pytest.mark.parametrize("n_extras", [0, 3])
def test_lemma62_four_support(benchmark, n_extras):
    pts = degenerate_cloud(n_extras)
    space = CornerConfigSpace(pts)
    report = run_once(benchmark, check_k_support, space, range(len(pts)), 4)
    benchmark.extra_info["points"] = len(pts)
    benchmark.extra_info["checked"] = report.checked
    benchmark.extra_info["max_support"] = report.max_support_size()
    assert report.ok
