"""E22: multiprocess speedup vs the Brent-bound prediction -- standalone
runner.

Like ``bench_kernels.py``, this is a plain script (the ``proc-smoke``
CI job and local runs both drive it): it times the supervised
:class:`~repro.runtime.procexec.ProcessExecutor` hull at P = 1, 2, 4, 8
workers against the serial RoundExecutor baseline, records the
work/span-model prediction (Brent: ``T_P <= W/P + S``, so predicted
speedup is ``W / (W/P + S)``), and appends a trajectory entry to
``BENCH_proc.json``, the artefact EXPERIMENTS.md's E22 table quotes.

The gap between the two columns is the honest part: the model predicts
what the DAG permits on P *real* processors, while the wall clock
reports what this box delivers after IPC, dispatch, and (on small
machines) oversubscription.  The run records ``cpu_count`` so a reader
can tell "the DAG is narrow" apart from "the box is narrow".

    PYTHONPATH=src python benchmarks/bench_speedup_proc.py            # full
    PYTHONPATH=src python benchmarks/bench_speedup_proc.py --smoke    # CI
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

import numpy as np  # noqa: E402

from repro.geometry import on_sphere  # noqa: E402
from repro.hull import facet_sets_global, parallel_hull  # noqa: E402
from repro.runtime import ProcessExecutor, RoundExecutor  # noqa: E402

SCHEMA = "repro.bench.proc/1"
WORKER_COUNTS = (1, 2, 4, 8)


def _time_runs(fn, repeats: int) -> tuple[float, object]:
    """Median wall-clock over ``repeats`` runs; returns (seconds, run)."""
    times, run = [], None
    for _ in range(repeats):
        t0 = time.perf_counter()
        run = fn()
        times.append(time.perf_counter() - t0)
    return float(np.median(times)), run


def run_proc_bench(n: int = 2000, d: int = 2, seed: int = 10,
                   repeats: int = 3) -> dict:
    pts = on_sphere(n, d, seed=seed)
    order = np.random.default_rng(seed + 1).permutation(n)

    serial_s, base = _time_runs(
        lambda: parallel_hull(pts, order=order.copy(), executor=RoundExecutor()),
        repeats,
    )
    ref = facet_sets_global(base.facets, base.order)
    work, span = base.tracker.work, base.tracker.span

    rows = []
    for p in WORKER_COUNTS:
        def run_once(p=p):
            return parallel_hull(
                pts, order=order.copy(),
                executor=ProcessExecutor(n_workers=p, chunk_timeout=60.0,
                                         hb_timeout=20.0),
            )

        wall_s, run = _time_runs(run_once, repeats)
        identical = facet_sets_global(run.facets, run.order) == ref
        predicted = work / (work / p + span)
        rows.append({
            "P": p,
            "wall_s": wall_s,
            "speedup": serial_s / wall_s,
            "brent_predicted_speedup": predicted,
            "identical": bool(identical),
            "worker_deaths": run.exec_stats.worker_deaths,
            "escalations": [str(e) for e in run.exec_stats.escalations],
        })

    return {
        "n": n, "d": d, "seed": seed, "repeats": repeats,
        "serial_s": serial_s,
        "work": int(work), "span": int(span),
        "parallelism": work / span,
        "cpu_count": os.cpu_count(),
        "rows": rows,
        "all_identical": all(r["identical"] for r in rows),
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small instance / one repeat: checks the harness "
                         "and facet identity, not the speedup")
    ap.add_argument("--n", type=int, default=2000)
    ap.add_argument("--d", type=int, default=2)
    ap.add_argument("--seed", type=int, default=10)
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument("--out", default="BENCH_proc.json", metavar="PATH")
    args = ap.parse_args(argv)

    if args.smoke:
        args.n, args.repeats = min(args.n, 400), 1

    entry = run_proc_bench(n=args.n, d=args.d, seed=args.seed,
                           repeats=args.repeats)
    entry["smoke"] = bool(args.smoke)

    # BENCH_proc.json is a trajectory: one entry per recorded run, so
    # successive PRs can see whether the dispatch overhead moved.
    doc = {"schema": SCHEMA, "trajectory": []}
    if os.path.exists(args.out):
        with open(args.out) as fh:
            loaded = json.load(fh)
        if loaded.get("schema") == SCHEMA:
            doc = loaded
    doc["trajectory"].append(entry)
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")

    print(f"wrote {args.out} (cpu_count={entry['cpu_count']}, "
          f"parallelism W/S={entry['parallelism']:.1f})")
    print(f"serial RoundExecutor: {entry['serial_s']:.3f}s")
    for r in entry["rows"]:
        print(f"  P={r['P']}: {r['wall_s']:.3f}s  "
              f"speedup {r['speedup']:.2f}x  "
              f"(Brent predicts {r['brent_predicted_speedup']:.2f}x)  "
              f"identical={r['identical']}")
    return 0 if entry["all_identical"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
