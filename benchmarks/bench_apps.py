"""Scaling of the downstream applications built on the hull library:
online maintenance, convex layers, joggled degenerate hulls, GJK
collision queries -- the adoption-surface benchmarks."""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.apps import SupportBody, convex_layers, gjk_intersects
from repro.geometry import integer_grid, uniform_ball
from repro.hull import joggled_hull
from repro.hull.online import OnlineHull


@pytest.mark.parametrize("n", [512, 2048])
def test_online_hull_stream(benchmark, n):
    pts = uniform_ball(n, 2, seed=n)

    def stream():
        h = OnlineHull(2)
        h.extend(pts)
        return h

    h = run_once(benchmark, stream)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["hull_vertices"] = len(h.vertex_indices())
    benchmark.extra_info["interior_points"] = h.interior_points


@pytest.mark.parametrize("n", [256, 1024])
def test_convex_layers(benchmark, n):
    pts = uniform_ball(n, 2, seed=n)
    res = run_once(benchmark, convex_layers, pts, seed=1)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["layers"] = res.n_layers


@pytest.mark.parametrize("side", [10, 20])
def test_joggled_grid(benchmark, side):
    pts = integer_grid(side, 2, seed=side)
    res = run_once(benchmark, joggled_hull, pts, seed=2)
    benchmark.extra_info["points"] = side * side
    benchmark.extra_info["attempts"] = res.attempts


def test_gjk_query_throughput(benchmark):
    rng = np.random.default_rng(3)
    bodies = [
        SupportBody.from_points(uniform_ball(30, 2, seed=k) + rng.uniform(-2, 2, 2))
        for k in range(20)
    ]

    def all_pairs():
        hits = 0
        for i in range(len(bodies)):
            for j in range(i + 1, len(bodies)):
                hits += gjk_intersects(bodies[i], bodies[j])
        return hits

    hits = benchmark(all_pairs)
    benchmark.extra_info["pairs"] = 190
    benchmark.extra_info["collisions"] = hits
