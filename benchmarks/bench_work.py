"""E2 (Theorem 5.4, work): the parallel algorithm performs the
sequential algorithm's visibility tests (minus buried-ridge savings),
O(n log n) in expectation for d <= 3.

``tests_per_nlogn`` must stay flat across sizes; ``ratio`` (parallel /
sequential tests) must be <= 1.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.geometry import on_sphere, uniform_ball
from repro.hull import parallel_hull, sequential_hull

SIZES = [512, 2048, 8192]


@pytest.mark.parametrize("n", SIZES)
def test_sequential_work_2d(benchmark, n):
    pts = uniform_ball(n, 2, seed=n)
    res = run_once(benchmark, sequential_hull, pts, seed=3)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["tests"] = res.counters.visibility_tests
    benchmark.extra_info["tests_per_nlogn"] = round(
        res.counters.visibility_tests / (n * np.log(n)), 3
    )


@pytest.mark.parametrize("n", SIZES)
def test_parallel_work_matches_sequential_2d(benchmark, n):
    pts = uniform_ball(n, 2, seed=n)
    order = np.random.default_rng(5).permutation(n)
    seq = sequential_hull(pts, order=order.copy())
    par = run_once(benchmark, parallel_hull, pts, order=order.copy())
    benchmark.extra_info["n"] = n
    benchmark.extra_info["seq_tests"] = seq.counters.visibility_tests
    benchmark.extra_info["par_tests"] = par.counters.visibility_tests
    benchmark.extra_info["ratio"] = round(
        par.counters.visibility_tests / seq.counters.visibility_tests, 4
    )
    benchmark.extra_info["same_created"] = par.created_keys() == seq.created_keys()
    assert par.counters.visibility_tests <= seq.counters.visibility_tests


@pytest.mark.parametrize("n", [512, 2048])
def test_work_3d_sphere(benchmark, n):
    """The hard regime: every point extreme, hull size Theta(n)."""
    pts = on_sphere(n, 3, seed=n)
    res = run_once(benchmark, sequential_hull, pts, seed=4)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["tests"] = res.counters.visibility_tests
    benchmark.extra_info["tests_per_nlogn"] = round(
        res.counters.visibility_tests / (n * np.log(n)), 3
    )


@pytest.mark.parametrize("n", [64, 128, 256])
def test_work_4d_cyclic(benchmark, n):
    """The n^{floor(d/2)} term of Theorem 5.4: cyclic polytopes in d=4
    have Theta(n^2) facets, and the work follows."""
    from repro.geometry import moment_curve

    pts = moment_curve(n, 4, seed=n)
    res = run_once(benchmark, sequential_hull, pts, seed=9)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["facets"] = len(res.facets)
    benchmark.extra_info["facets_per_n2"] = round(len(res.facets) / n**2, 4)
    benchmark.extra_info["tests"] = res.counters.visibility_tests
