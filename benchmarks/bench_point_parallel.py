"""E15: facet-level asynchrony (Algorithm 3) vs the bulk-synchronous
point-parallel scheme used by practical codes (paper Section 1).

The shape claim: both are logarithmic-ish under random insertion
orders, but Algorithm 3's dependence depth is consistently below the
point-parallel round count, and only Algorithm 3 carries a proof.
"""

import pytest

from benchmarks.conftest import run_once
from repro.geometry import on_sphere, uniform_ball
from repro.hull import parallel_hull
from repro.hull.point_parallel import point_parallel_hull

SIZES = [512, 2048]


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("gen", [uniform_ball, on_sphere], ids=["ball", "sphere"])
def test_point_parallel_rounds(benchmark, n, gen):
    pts = gen(n, 2, seed=n)
    pp = run_once(benchmark, point_parallel_hull, pts, seed=1)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["rounds"] = pp.rounds
    benchmark.extra_info["max_round_width"] = max(pp.round_sizes)
    benchmark.extra_info["total_deferrals"] = sum(pp.deferred)


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("gen", [uniform_ball, on_sphere], ids=["ball", "sphere"])
def test_algorithm3_depth_reference(benchmark, n, gen):
    pts = gen(n, 2, seed=n)
    run = run_once(benchmark, parallel_hull, pts, seed=1)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["depth"] = run.dependence_depth()
