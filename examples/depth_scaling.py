"""Experiment E1 as a script: measure the dependence depth of the
parallel incremental hull across problem sizes and compare with the
O(log n) claim of Theorem 1.1.

Run:  python examples/depth_scaling.py [--quick]
"""

import sys

from repro.analysis import measure_hull_depths
from repro.configspace.theory import depth_bound_whp, harmonic, min_sigma
from repro.geometry import on_sphere, uniform_ball


def main() -> None:
    quick = "--quick" in sys.argv
    ns = [64, 256, 1024] if quick else [64, 128, 256, 512, 1024, 2048, 4096]
    seeds = range(3 if quick else 10)

    for gen, label in ((uniform_ball, "uniform ball"), (on_sphere, "on sphere")):
        for d in (2, 3):
            print(f"\n=== d={d}, workload: {label} ===")
            print(f"{'n':>6} {'H_n':>6} {'mean depth':>11} {'max':>5} "
                  f"{'depth/H_n':>10} {'whp bound':>10}")
            camp = measure_hull_depths(ns, d, seeds, generator=gen)
            for s in camp.samples:
                print(f"{s.n:>6} {harmonic(s.n):>6.2f} {s.mean_depth:>11.2f} "
                      f"{s.max_depth:>5} {s.depth_over_harmonic:>10.2f} "
                      f"{depth_bound_whp(s.n, g=d, k=2, c=2):>10.1f}")
            print(f"empirical sigma stays below the Theorem 4.2 threshold "
                  f"g*k*e^2 = {min_sigma(d, 2):.1f}; "
                  f"fitted slope per ln(n): {camp.log_slope():.2f}")


if __name__ == "__main__":
    main()
