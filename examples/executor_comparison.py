"""Compare execution disciplines for Algorithm 3: serial DFS,
round-synchronous (PRAM-style), shuffled rounds, and real threads with
the CAS / TAS concurrent multimaps.

All disciplines produce the same hull and the same facet multiset --
the paper's point is that the *schedule* is free.  Wall-clock speedup
under threads is GIL-bound in CPython; the work-span log is the model
quantity that shows the available parallelism.

Run:  python examples/executor_comparison.py
"""

import time

import numpy as np

from repro.geometry import on_sphere
from repro.hull import parallel_hull
from repro.runtime import RoundExecutor, SerialExecutor, ThreadExecutor


def main() -> None:
    n = 3000
    pts = on_sphere(n, 3, seed=6)
    order = np.random.default_rng(2).permutation(n)

    configs = [
        ("serial DFS, dict map", SerialExecutor(), "dict"),
        ("rounds (PRAM), dict map", RoundExecutor(), "dict"),
        ("rounds shuffled, dict map", RoundExecutor(seed=1), "dict"),
        ("2 threads, CAS map (Alg. 4)", ThreadExecutor(2), "cas"),
        ("2 threads, TAS map (Alg. 5)", ThreadExecutor(2), "tas"),
    ]

    reference = None
    print(f"3D hull of {n} points on the sphere (all extreme)\n")
    print(f"{'discipline':<30} {'time':>7} {'facets':>7} {'depth':>6} {'same?':>6}")
    for label, executor, mm in configs:
        t0 = time.perf_counter()
        run = parallel_hull(pts, order=order.copy(), executor=executor, multimap=mm)
        dt = time.perf_counter() - t0
        keys = run.created_keys()
        if reference is None:
            reference = keys
        print(f"{label:<30} {dt:>6.2f}s {len(run.facets):>7} "
              f"{run.dependence_depth():>6} {str(keys == reference):>6}")

    run = parallel_hull(pts, order=order.copy())
    print(f"\nwork-span model: W = {run.tracker.work:,} ops, "
          f"S = {run.tracker.span:,}, parallelism W/S = {run.tracker.parallelism:.0f}")
    print("simulated greedy speedups:",
          {p: round(s, 1) for p, s in run.tracker.speedup_curve([2, 8, 32, 128]).items()})


if __name__ == "__main__":
    main()
