"""Terrain triangulation: build a TIN (triangulated irregular network)
from scattered elevation samples with the parallel incremental Delaunay
(2D Delaunay == lifted 3D hull, Section 7 territory), then interpolate
heights by barycentric interpolation on the triangles.

This is the classic GIS workload that motivates parallel Delaunay /
hull construction.

Run:  python examples/terrain_delaunay.py
"""

import numpy as np

from repro.apps import delaunay
from repro.geometry import rng_for


def terrain_height(xy: np.ndarray) -> np.ndarray:
    """Synthetic smooth terrain: a couple of hills and a valley."""
    x, y = xy[:, 0], xy[:, 1]
    return (
        2.0 * np.exp(-((x - 0.3) ** 2 + (y - 0.4) ** 2) * 8)
        + 1.2 * np.exp(-((x + 0.5) ** 2 + (y + 0.2) ** 2) * 6)
        - 0.8 * np.exp(-((x - 0.1) ** 2 + (y + 0.6) ** 2) * 10)
    )


def interpolate(xy_samples, z_samples, triangles, queries):
    """Barycentric interpolation over the TIN (linear per triangle)."""
    tri_list = [sorted(t) for t in triangles]
    out = np.full(len(queries), np.nan)
    for qi, q in enumerate(queries):
        for tri in tri_list:
            a, b, c = (xy_samples[i] for i in tri)
            m = np.array([b - a, c - a]).T
            try:
                lam = np.linalg.solve(m, q - a)
            except np.linalg.LinAlgError:
                continue
            l1, l2 = lam
            l0 = 1 - l1 - l2
            if min(l0, l1, l2) >= -1e-12:
                out[qi] = (
                    l0 * z_samples[tri[0]]
                    + l1 * z_samples[tri[1]]
                    + l2 * z_samples[tri[2]]
                )
                break
    return out


def main() -> None:
    rng = rng_for(2020)
    n = 800
    xy = rng.uniform(-1, 1, size=(n, 2))
    z = terrain_height(xy)

    res = delaunay(xy, seed=15)
    print(f"TIN over {n} elevation samples")
    print(f"  triangles:        {res.n_triangles}")
    print(f"  dependence depth: {res.dependence_depth()} "
          f"(the lifted hull's parallel rounds)")

    queries = rng.uniform(-0.8, 0.8, size=(200, 2))
    approx = interpolate(xy, z, res.triangles, queries)
    truth = terrain_height(queries)
    valid = ~np.isnan(approx)
    err = np.abs(approx[valid] - truth[valid])
    print(f"  interpolated {valid.sum()} query points")
    print(f"  mean |error| = {err.mean():.4f}, max |error| = {err.max():.4f}")
    assert err.mean() < 0.05, "TIN interpolation should track the smooth field"


if __name__ == "__main__":
    main()
