"""Quickstart: build convex hulls with the parallel randomized
incremental algorithm and inspect what the paper is about.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis import speedup_table
from repro.configspace.theory import harmonic
from repro.geometry import uniform_ball
from repro.hull import Polytope, parallel_hull, sequential_hull, validate_hull


def main() -> None:
    rng_seed = 42

    # --- 2D hull -------------------------------------------------------
    pts = uniform_ball(10_000, 2, seed=1)
    run = parallel_hull(pts, seed=rng_seed)
    validate_hull(run.facets, run.points)
    print("2D hull of 10,000 random points in the unit disk")
    print(f"  hull vertices:    {len(run.vertex_indices())}")
    print(f"  visibility tests: {run.counters.visibility_tests:,}")
    print(f"  dependence depth: {run.dependence_depth()}  "
          f"(g*H_n = {2 * harmonic(10_000):.1f})")
    print(f"  rounds:           {run.exec_stats.rounds}")

    # --- the headline claim: parallel == sequential, reshuffled ---------
    order = np.random.default_rng(7).permutation(2_000)
    pts3 = uniform_ball(2_000, 3, seed=2)
    seq = sequential_hull(pts3, order=order.copy())
    par = parallel_hull(pts3, order=order.copy())
    print("\n3D: same insertion order, both algorithms")
    print(f"  same facets created:  {par.created_keys() == seq.created_keys()}")
    print(f"  visibility tests:     sequential {seq.counters.visibility_tests:,} "
          f"vs parallel {par.counters.visibility_tests:,}")

    # --- geometry post-processing ---------------------------------------
    poly = Polytope.from_run(par)
    print(f"  hull volume:          {poly.volume():.4f} "
          f"(unit ball = {4/3*np.pi:.4f})")
    print(f"  surface area:         {poly.surface_measure():.4f}")

    # --- simulated speedup from the work-span log ------------------------
    print("\nSimulated greedy-scheduler speedup (work-span model):")
    for row in speedup_table(par, [1, 2, 4, 8, 16, 32]):
        print(f"  P={row['P']:>3}  T_P={row['T_P']:>9,}  "
              f"speedup={row['speedup']:>6.2f}  util={row['utilisation']:.2f}")


if __name__ == "__main__":
    main()
