"""Localization by unit-disk intersection (Section 7's circle space).

A target broadcasts to sensors with unit communication range; each
sensor that hears it constrains the target to its unit disk.  The
feasible region is the intersection of those disks -- computed with the
randomized incremental arc algorithm, whose dependence depth is the
paper's O(log n).

Run:  python examples/sensor_localization.py
"""

import numpy as np

from repro.apps import incremental_disk_intersection
from repro.geometry import rng_for


def main() -> None:
    rng = rng_for(99)
    target = np.array([0.15, -0.1])

    # Sensors scattered in the plane; those within range 1 hear the
    # target and contribute a unit-disk constraint centred on them.
    sensors = rng.uniform(-1.5, 1.5, size=(120, 2))
    hears = np.linalg.norm(sensors - target, axis=1) <= 1.0
    centers = sensors[hears]
    print(f"{hears.sum()} of {len(sensors)} sensors hear the target")

    res = incremental_disk_intersection(centers, seed=3)
    assert not res.empty, "the target guarantees a nonempty intersection"
    boundary = res.boundary()
    print(f"feasible region boundary: {len(boundary)} arcs")
    print(f"dependence depth of the incremental construction: "
          f"{res.dependence_depth()}")

    # The true position must lie in the region.
    assert res.contains(target)

    # Estimate the region's area by sampling, and localise to its centroid.
    samples = rng.uniform(-2, 2, size=(20_000, 2))
    inside = np.array([res.contains(s) for s in samples])
    area = 16.0 * inside.mean()
    centroid = samples[inside].mean(axis=0)
    print(f"feasible area ~ {area:.3f};  centroid estimate {np.round(centroid, 3)}")
    print(f"localization error: {np.linalg.norm(centroid - target):.3f}")


if __name__ == "__main__":
    main()
