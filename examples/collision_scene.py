"""Convex collision detection scene: hulls as collision proxies.

A scattering of random rigid "parts" (each the convex hull of a small
point cloud) is tested all-pairs for contact with GJK over the hull
support functions -- the classic downstream use of a hull library in
physics/robotics pipelines.

Run:  python examples/collision_scene.py
"""

import numpy as np

from repro.apps import SupportBody, gjk_distance, gjk_intersects
from repro.geometry import rng_for, uniform_ball
from repro.hull import Polytope, parallel_hull


def main() -> None:
    rng = rng_for(7)
    n_parts = 12
    parts = []
    for k in range(n_parts):
        cloud = uniform_ball(40, 2, seed=k) * rng.uniform(0.4, 0.9)
        cloud += rng.uniform(-3, 3, size=2)
        run = parallel_hull(cloud, seed=k + 100)
        parts.append(SupportBody.from_polytope(Polytope.from_run(run)))

    contacts = []
    min_gap = (np.inf, None)
    for i in range(n_parts):
        for j in range(i + 1, n_parts):
            if gjk_intersects(parts[i], parts[j]):
                contacts.append((i, j))
            else:
                gap = gjk_distance(parts[i], parts[j])
                if gap < min_gap[0]:
                    min_gap = (gap, (i, j))

    print(f"{n_parts} convex parts, {n_parts * (n_parts - 1) // 2} pairs tested")
    print(f"colliding pairs: {contacts}")
    if min_gap[1] is not None:
        print(f"closest non-colliding pair: {min_gap[1]} at distance {min_gap[0]:.4f}")

    # Sanity: collision is symmetric and separation distances positive.
    for i, j in contacts:
        assert gjk_intersects(parts[j], parts[i])


if __name__ == "__main__":
    main()
