"""One triangulation, three algorithms.

The same point set is triangulated by (1) the lifted 3D parallel hull,
(2) sequential Bowyer--Watson, and (3) the edge-driven parallel
Delaunay (Algorithm 3's machinery on triangles).  All three must agree
triangle-for-triangle; the two incremental ones under a shared
insertion order also perform the *identical* in-circle tests -- the
paper's equivalence story, live.

Run:  python examples/delaunay_three_ways.py
"""

import numpy as np

from repro.apps import bowyer_watson, delaunay, parallel_delaunay
from repro.geometry import uniform_ball


def main() -> None:
    n = 1200
    pts = uniform_ball(n, 2, seed=2020)
    order = np.random.default_rng(7).permutation(n)

    lifted = delaunay(pts, order=order.copy())
    bw = bowyer_watson(pts, order=order.copy())
    pd = parallel_delaunay(pts, order=order.copy())

    print(f"{n} points, shared insertion order\n")
    print(f"{'method':<28} {'triangles':>9} {'depth':>6} {'tests':>9}")
    print(f"{'lifted 3D parallel hull':<28} {lifted.n_triangles:>9} "
          f"{lifted.dependence_depth():>6} {lifted.hull_run.counters.visibility_tests:>9}")
    print(f"{'sequential Bowyer-Watson':<28} {bw.n_triangles:>9} "
          f"{bw.dependence_depth():>6} {bw.in_circle_tests:>9}")
    print(f"{'parallel (ProcessEdge)':<28} {pd.n_triangles:>9} "
          f"{pd.dependence_depth():>6} {pd.in_circle_tests:>9}")

    assert lifted.triangles == bw.triangles == pd.triangles
    assert pd.in_circle_tests == bw.in_circle_tests
    pd_created = sorted(tuple(sorted(t.verts)) for t in pd.created)
    bw_created = sorted(tuple(sorted(t.verts)) for t in bw.created)
    assert pd_created == bw_created
    print("\nall three agree; the two direct incrementals created the "
          "identical triangle multiset with identical in-circle tests "
          "(the paper's Theorem 5.4 equivalence, on Delaunay).")
    print(f"parallel rounds: {pd.rounds} (= depth + 1 = {pd.dependence_depth() + 1})")


if __name__ == "__main__":
    main()
