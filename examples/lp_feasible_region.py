"""Feasible region of 2D linear constraints by incremental half-plane
intersection (Section 7), two ways: through point/plane duality on the
parallel hull, and by the direct instrumented incremental algorithm.

Scenario: a production-planning LP's constraint polygon; knowing its
vertices lets you optimise any linear objective by vertex enumeration.

Run:  python examples/lp_feasible_region.py
"""

import numpy as np

from repro.apps import halfplane_intersection, incremental_halfplanes
from repro.configspace.spaces import tangent_halfplanes


def main() -> None:
    n = 60
    normals, offsets = tangent_halfplanes(n, seed=8, radius=1.0)
    print(f"{n} linear constraints (all tangent to the unit circle)")

    dual = halfplane_intersection(normals, offsets, seed=1)
    print(f"dual-hull method:   {len(dual.vertex_pairs)} vertices, "
          f"dependence depth {dual.dependence_depth()}")

    direct = incremental_halfplanes(normals, offsets, seed=1)
    print(f"direct incremental: {len(direct.vertex_pairs)} vertices, "
          f"dependence depth {direct.dependence_depth()}")

    same = {frozenset(p) for p in dual.vertex_pairs} == {
        frozenset(p) for p in direct.vertex_pairs
    }
    print(f"methods agree: {same}")

    # Optimise a few objectives by vertex enumeration.
    for c in ([1.0, 0.0], [0.3, -0.9], [-1.0, 1.0]):
        c = np.array(c)
        values = dual.vertices @ c
        best = int(np.argmax(values))
        print(f"max {c} . x  ->  {values[best]:.4f} at vertex "
              f"{np.round(dual.vertices[best], 4)} "
              f"(constraints {dual.vertex_pairs[best]})")
        # Sanity: the optimum of an LP over a polygon is a vertex; all
        # feasible sample points score no better.
        rng = np.random.default_rng(4)
        samples = rng.uniform(-1.5, 1.5, size=(2000, 2))
        feasible = samples[(samples @ normals.T <= offsets[None, :]).all(axis=1)]
        assert (feasible @ c <= values[best] + 1e-9).all()


if __name__ == "__main__":
    main()
