"""Reproduce the paper's Figure 1 / Section 5.3 worked example.

Starting from the hull u-v-w-x-y-z-t, points a, b, c are added in
insertion order.  The parallel algorithm finishes in three rounds:

  round 1:  v-c, w-b, x-a, a-z created in parallel
  round 2:  b-a replaces x-a; c-z replaces a-z
  round 3:  w-b and b-a are buried by c; v-c and c-z finalise

Run:  python examples/figure1_walkthrough.py
"""

import numpy as np

from repro.geometry import figure1_points
from repro.hull import parallel_hull


def main() -> None:
    pts, labels = figure1_points()
    run = parallel_hull(pts, order=np.arange(10), base_size=7)

    def edge(fid: int) -> str:
        f = next(x for x in run.created if x.fid == fid)
        return "-".join(labels[i] for i in f.indices)

    print("Figure 1 walkthrough (paper Section 5.3)")
    print(f"initial hull: {'-'.join(labels[:7])};  adding a, b, c\n")
    for rnd in range(run.exec_stats.rounds):
        print(f"round {rnd + 1}:")
        for e in run.events:
            if e.round != rnd:
                continue
            ridge = ",".join(labels[i] for i in sorted(e.ridge))
            if e.kind == "create":
                print(f"  ridge {{{ridge}}}: create {edge(e.created)} "
                      f"(replaces {edge(e.removed)}, pivot {labels[e.pivot]})")
            elif e.kind == "bury":
                a, b = e.removed_pair
                print(f"  ridge {{{ridge}}}: bury {edge(a)} and {edge(b)} "
                      f"(both see pivot {labels[e.pivot]})")
            else:
                print(f"  ridge {{{ridge}}}: final")
        print()
    hull = sorted(edge(f.fid) for f in run.facets)
    print(f"final hull edges: {hull}")
    print(f"rounds: {run.exec_stats.rounds}, dependence depth: {run.dependence_depth()}")


if __name__ == "__main__":
    main()
