"""Draw the E1 summary figure: dependence depth vs n for all four
incremental problems the library parallelises -- convex hull (2D/3D),
Delaunay (edge-driven), and half-plane intersection -- on a log-x SVG
chart.  Logarithmic depth shows up as straight lines.

Run:  python examples/depth_chart.py [outfile.svg]
"""

import pathlib
import sys

import numpy as np

from repro.apps.parallel_delaunay import parallel_delaunay
from repro.apps.parallel_halfplanes import parallel_halfplanes
from repro.configspace.spaces import tangent_halfplanes
from repro.geometry import uniform_ball
from repro.hull import parallel_hull
from repro.viz import render_depth_chart


def main() -> None:
    out = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "depth_chart.svg")
    ns = [64, 128, 256, 512, 1024, 2048]
    series: dict[str, list[tuple[int, float]]] = {
        "hull d=2": [],
        "hull d=3": [],
        "delaunay": [],
        "half-planes": [],
    }
    for n in ns:
        series["hull d=2"].append(
            (n, parallel_hull(uniform_ball(n, 2, seed=n), seed=1).dependence_depth())
        )
        series["hull d=3"].append(
            (n, parallel_hull(uniform_ball(n, 3, seed=n), seed=2).dependence_depth())
        )
        series["delaunay"].append(
            (n, parallel_delaunay(uniform_ball(n, 2, seed=n), seed=3).dependence_depth())
        )
        normals, offsets = tangent_halfplanes(n, seed=n)
        series["half-planes"].append(
            (n, parallel_halfplanes(normals, offsets, seed=4).dependence_depth())
        )
        print(f"n={n:5d}: " + "  ".join(
            f"{k}={v[-1][1]:3.0f}" for k, v in series.items()
        ))
    out.write_text(render_depth_chart(series))
    print(f"\nwrote {out} ({out.stat().st_size:,} bytes)")


if __name__ == "__main__":
    main()
