"""Render SVG figures of the reproduction: the Figure 1 walkthrough
(facets coloured by creation round), a round-coloured random hull, a
Delaunay triangulation, and a unit-disk intersection boundary.

Run:  python examples/render_figures.py [outdir]
Writes figure1.svg, hull_rounds.svg, delaunay.svg, disks.svg.
"""

import pathlib
import sys

import numpy as np

from repro.apps import delaunay, incremental_disk_intersection
from repro.configspace.spaces import clustered_unit_circles
from repro.geometry import figure1_points, uniform_ball
from repro.hull import parallel_hull
from repro.viz import render_delaunay, render_disk_boundary, render_hull_rounds


def main() -> None:
    outdir = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "figures")
    outdir.mkdir(exist_ok=True)

    pts, _ = figure1_points()
    run = parallel_hull(pts, order=np.arange(10), base_size=7)
    (outdir / "figure1.svg").write_text(render_hull_rounds(run))

    run = parallel_hull(uniform_ball(400, 2, seed=1), seed=2)
    (outdir / "hull_rounds.svg").write_text(render_hull_rounds(run))

    res = delaunay(uniform_ball(250, 2, seed=3), seed=4)
    (outdir / "delaunay.svg").write_text(render_delaunay(res))

    disks = incremental_disk_intersection(clustered_unit_circles(25, seed=5), seed=6)
    (outdir / "disks.svg").write_text(render_disk_boundary(disks))

    for f in sorted(outdir.glob("*.svg")):
        print(f"wrote {f} ({f.stat().st_size:,} bytes)")


if __name__ == "__main__":
    main()
