"""Differential fuzzing harness for the hull implementations.

Random (workload, n, d, seed) instances are run through every hull
implementation in the library -- sequential (Algorithm 2), parallel
(Algorithm 3, random executor), online, point-parallel, quickhull --
and cross-checked against each other, against the structural
validators, and against scipy's Qhull.  Any disagreement prints a
reproducer and exits nonzero.

Each iteration also fuzzes a concurrent-multimap scenario (random
implementation, capacity, hash regime, op count) under random
adversarial schedules **with the happens-before race checker
attached** (:mod:`repro.runtime.racecheck`), so fuzzing reports
races and yield-discipline violations, not just wrong results.

This harness is how the moment-curve predicate-envelope bug was pinned
down (see EXPERIMENTS.md, "honest notes").

``--chaos`` switches to fault-injection fuzzing over random (input,
schedule, fault plan) triples: RoundExecutor runs with random
crash/delay rates must checkpoint-resume to the exact fault-free facet
set, ChaosThreadExecutor runs must survive worker deaths, and random
multimap ops frozen forever at a random yield point must never block
the others (lock-freedom, Theorem A.1/5.5).

``--chaos-proc`` extends the chaos mode across the process boundary:
random (input, fault plan, worker count) triples run on the supervised
:class:`~repro.runtime.procexec.ProcessExecutor` with real worker
processes being SIGKILLed, stalled, and their result messages dropped
or duplicated mid-round -- and every run must still produce the
bit-identical event trace, counters, and work/span DAG of the
fault-free serial execution.

``--degenerate`` fuzzes the adversarial corpus
(:mod:`repro.geometry.degenerate`): every family x random seed must
climb the robust ladder without ever joggling, the resulting
certificate must survive verification while a randomly corrupted copy
must be rejected, and the SoS hull must be *canonical* -- serial,
round-synchronous and free-threaded executions of the same insertion
order must produce the identical facet set over original indices.

``--kernels`` fuzzes the batched predicate kernels
(:mod:`repro.geometry.kernels`) over random (input, dimension,
filter-threshold) triples: hulls built with ``kernel="batch"`` under a
randomly inflated float-filter envelope must stay facet- and
counter-identical to the scalar oracle, and sampled ``orient_batch``
blocks must agree elementwise with scalar ``orient``.

``--effects`` mutation-fuzzes the static effect analyzer
(:mod:`repro.analyze`): random structural mutations of seed programs
(line deletion/duplication/swaps, spliced statements, truncation,
reindentation) must never crash ``analyze_paths`` -- syntax errors
must surface as RPREFF999 pseudo-findings and every finding must
format and JSON round-trip.

``--hotpath`` applies the same mutation engine to the vectorization
hot-path analyzer (:mod:`repro.analyze.hotpath`): mutated NumPy kernel
sketches -- with mangled shape annotations, dangling noqa comments and
broken kernel= entries -- must never crash ``analyze_hotpaths``, and
syntax errors must surface as RPRHOT999 pseudo-findings.

Run:  python tools/fuzz.py [--iterations N] [--seed S] [--verbose]
      python tools/fuzz.py --chaos [--duration SECS]
      python tools/fuzz.py --chaos-proc [--duration SECS]
      python tools/fuzz.py --degenerate [--duration SECS]
      python tools/fuzz.py --kernels [--duration SECS]
      python tools/fuzz.py --effects [--iterations N]
      python tools/fuzz.py --hotpath [--iterations N]
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np
from scipy.spatial import ConvexHull as ScipyHull

from repro.baselines import quickhull
from repro.geometry import (
    anisotropic,
    gaussian,
    moment_curve,
    on_sphere,
    two_clusters,
    uniform_ball,
    uniform_cube,
)
from repro.hull import (
    facet_sets_global,
    parallel_hull,
    point_parallel_hull,
    sequential_hull,
    validate_hull,
)
from repro.hull.online import OnlineHull
from repro.runtime import (
    CASMultimap,
    MultimapFullError,
    RoundExecutor,
    SerialExecutor,
    TASMultimap,
    ThreadExecutor,
)
from repro.runtime.chaos import chaos_hull_roundtrip, sweep_stalled_multimap
from repro.runtime.racecheck import RaceChecker, multimap_scenario

GENERATORS = [
    ("ball", uniform_ball, (2, 3, 4)),
    ("cube", uniform_cube, (2, 3, 4)),
    ("sphere", on_sphere, (2, 3)),
    ("gaussian", gaussian, (2, 3)),
    ("anisotropic", anisotropic, (2, 3)),
    ("two_clusters", two_clusters, (2, 3)),
    ("moment_curve", moment_curve, (2, 3, 4)),
]


def one_case(rng: np.random.Generator, verbose: bool) -> str | None:
    """Run one random instance through everything; returns an error
    description or None."""
    name, gen, dims = GENERATORS[int(rng.integers(0, len(GENERATORS)))]
    d = int(rng.choice(dims))
    n = int(rng.integers(d + 2, 120 if d < 4 else 60))
    seed = int(rng.integers(0, 2**31))
    label = f"{name}(n={n}, d={d}, seed={seed})"
    if verbose:
        print(f"  {label}")
    pts = gen(n, d, seed=seed)
    order = np.random.default_rng(seed + 1).permutation(n)
    executors = [SerialExecutor(), RoundExecutor(), RoundExecutor(seed=seed % 97)]
    mm = "dict"
    if seed % 5 == 0:
        executors.append(ThreadExecutor(2))

    try:
        seq = sequential_hull(pts, order=order.copy())
        validate_hull(seq.facets, seq.points)
        ref = facet_sets_global(seq.facets, seq.order)

        for ex in executors:
            mm_used = "cas" if isinstance(ex, ThreadExecutor) else mm
            par = parallel_hull(pts, order=order.copy(), executor=ex, multimap=mm_used)
            validate_hull(par.facets, par.points)
            if facet_sets_global(par.facets, par.order) != ref:
                return f"{label}: parallel[{type(ex).__name__}] differs from sequential"
            if not isinstance(ex, ThreadExecutor):
                if par.created_keys() != seq.created_keys():
                    return f"{label}: created-facet multiset differs"

        pp = point_parallel_hull(pts, order=order.copy())
        if facet_sets_global(pp.facets, pp.order) != ref:
            return f"{label}: point-parallel differs"

        oh = OnlineHull(d)
        oh.extend(pts)
        if facet_sets_global(oh.facets, np.arange(n)) != ref:
            return f"{label}: online differs"

        qh = quickhull(pts)
        if facet_sets_global(qh.facets, qh.order) != ref:
            return f"{label}: quickhull differs"

        scipy_verts = set(ScipyHull(pts).vertices.tolist())
        our_verts = {int(seq.order[i]) for i in seq.vertex_ranks()}
        if our_verts != scipy_verts:
            return f"{label}: vertex set differs from scipy"
    except Exception as exc:  # noqa: BLE001 - fuzzing surface
        return f"{label}: exception {type(exc).__name__}: {exc}"
    return None


def one_multimap_case(rng: np.random.Generator, verbose: bool) -> str | None:
    """Race-check one random multimap scenario under random schedules;
    returns an error description or None."""
    cls = [CASMultimap, TASMultimap][int(rng.integers(0, 2))]
    n_ops = int(rng.integers(2, 4))
    # Linear-probing invariant: pass 2 of Algorithm 5 terminates at the
    # first never-taken slot, so the table must keep one slot free.
    capacity = int(rng.integers(n_ops + 1, 9))
    collide = bool(rng.integers(0, 2))
    names = [chr(ord("p") + i) for i in range(n_ops)]
    n_schedules = 20
    sched_len = int(rng.integers(4, 14))
    label = (f"{cls.__name__}(capacity={capacity}, collide={collide}, "
             f"ops={n_ops}, len={sched_len})")
    if verbose:
        print(f"  {label}")
    checker = RaceChecker()
    try:
        for _ in range(n_schedules):
            schedule = [names[int(j)] for j in rng.integers(0, n_ops, size=sched_len)]
            kwargs = {"hash_fn": (lambda k: 0)} if collide else {}
            m = cls(capacity, **kwargs)
            report = checker.run(multimap_scenario(m, n_ops=n_ops), schedule)
            if not report.ok:
                return f"{label}: {report.describe()}"
            winners = sorted(
                v for k, v in report.results.items() if k in ("p", "q")
            )
            if winners != [False, True]:
                return f"{label}: A.1 violated on {schedule}: {report.results}"
    except Exception as exc:  # noqa: BLE001 - fuzzing surface
        return f"{label}: exception {type(exc).__name__}: {exc}"
    return None


def one_chaos_case(rng: np.random.Generator, verbose: bool) -> str | None:
    """Fuzz one random (input, schedule, fault plan) triple; returns an
    error description or None."""
    kind = int(rng.integers(0, 3))
    try:
        if kind == 0:
            # Checkpoint-resume roundtrip: random input + fault rates.
            workload = ["ball", "cube", "sphere", "gaussian"][int(rng.integers(0, 4))]
            d = int(rng.integers(2, 4))
            n = int(rng.integers(d + 5, 90))
            seed = int(rng.integers(0, 2**31))
            crash = float(rng.uniform(0.0, 0.5))
            delay = float(rng.uniform(0.0, 0.3))
            label = (f"roundtrip[{workload}](n={n}, d={d}, seed={seed}, "
                     f"crash={crash:.2f}, delay={delay:.2f})")
            if verbose:
                print(f"  {label}")
            rep = chaos_hull_roundtrip(
                n=n, d=d, seed=seed, crash_rate=crash, delay_rate=delay,
                workload=workload, executor_kind="rounds",
            )
            if not rep["ok"]:
                return f"{label}: facet set diverged after rollback ({rep})"
        elif kind == 1:
            # Worker-death roundtrip under the chaos thread executor.
            seed = int(rng.integers(0, 2**31))
            n = int(rng.integers(20, 70))
            crash = float(rng.uniform(0.0, 0.3))
            label = f"threads(n={n}, seed={seed}, crash={crash:.2f})"
            if verbose:
                print(f"  {label}")
            rep = chaos_hull_roundtrip(
                n=n, d=2, seed=seed, crash_rate=crash,
                executor_kind="threads", n_workers=int(rng.integers(2, 5)),
            )
            if not rep["ok"]:
                return f"{label}: facet set diverged after worker deaths ({rep})"
        else:
            # Lock-freedom: random stalled-op sweep (smaller prefix than
            # the exhaustive CI sweep; the randomness is in the knobs).
            impl = ["cas", "tas"][int(rng.integers(0, 2))]
            capacity = int(rng.integers(3, 7))
            n_ops = int(rng.integers(2, 4))
            collide = bool(rng.integers(0, 2))
            label = (f"stall[{impl}](capacity={capacity}, ops={n_ops}, "
                     f"collide={collide})")
            if verbose:
                print(f"  {label}")
            summary = sweep_stalled_multimap(
                impl, capacity=capacity, prefix_len=4 if n_ops > 2 else 5,
                n_ops=n_ops, collide=collide, max_stall=6,
            )
            if not summary.ok:
                return f"{label}: {summary.describe()}"
    except Exception as exc:  # noqa: BLE001 - fuzzing surface
        return f"chaos case {kind}: exception {type(exc).__name__}: {exc}"
    return None


def one_chaos_proc_case(rng: np.random.Generator, verbose: bool) -> str | None:
    """Fuzz one random (input, fault plan, worker count) triple through
    the supervised process executor; returns an error description or
    None.  Inputs stay small: each case spawns real OS processes and
    SIGKILLs a fair fraction of them, so the cost per iteration is
    dominated by respawns, not geometry."""
    workload = ["ball", "cube", "sphere", "gaussian"][int(rng.integers(0, 4))]
    d = int(rng.integers(2, 4))
    n = int(rng.integers(d + 5, 48))
    seed = int(rng.integers(0, 2**31))
    n_workers = int(rng.integers(2, 5))
    # One dominant fault kind per case plus a light mix, so each
    # iteration stresses a specific supervision path (reap/respawn,
    # stall-detection, dedup, requeue) instead of a grey average.
    rates = {"kill_rate": 0.0, "stall_rate": 0.0, "drop_rate": 0.0,
             "dup_rate": 0.0, "delay_rate": 0.0}
    dominant = list(rates)[int(rng.integers(0, len(rates)))]
    rates[dominant] = float(rng.uniform(0.15, 0.4))
    for k in rates:
        if k != dominant and rng.integers(0, 3) == 0:
            rates[k] = float(rng.uniform(0.0, 0.1))
    label = (f"procs[{workload}](n={n}, d={d}, seed={seed}, P={n_workers}, "
             + ", ".join(f"{k.split('_')[0]}={v:.2f}"
                         for k, v in rates.items() if v) + ")")
    if verbose:
        print(f"  {label}")
    try:
        rep = chaos_hull_roundtrip(
            n=n, d=d, seed=seed, workload=workload,
            executor_kind="procs", n_workers=n_workers, **rates,
        )
        if not rep["ok"]:
            return f"{label}: facet set diverged under process faults ({rep})"
        if not rep.get("trace_identical", False):
            return f"{label}: event trace / work-span DAG diverged ({rep})"
        from repro.runtime.procexec import active_segments
        leaked = active_segments()
        if leaked:
            return f"{label}: leaked shared-memory segments {sorted(leaked)}"
    except Exception as exc:  # noqa: BLE001 - fuzzing surface
        return f"{label}: exception {type(exc).__name__}: {exc}"
    return None


def one_degenerate_case(rng: np.random.Generator, verbose: bool) -> str | None:
    """Fuzz one (family, seed) pair from the adversarial degenerate
    corpus; returns an error description or None."""
    from repro.geometry.degenerate import CORPUS
    from repro.geometry.perturb import sos_mode
    from repro.hull import robust_hull
    from repro.hull.certify import (
        CORRUPTION_MODES,
        CertificateError,
        corrupt_certificate,
        verify_certificate,
    )

    names = list(CORPUS)
    name = names[int(rng.integers(0, len(names)))]
    family = CORPUS[name]
    seed = int(rng.integers(0, 2**31))
    label = f"degenerate[{name}](seed={seed})"
    if verbose:
        print(f"  {label}")
    pts = family(seed)
    try:
        res = robust_hull(pts, seed=seed)
        if res.mode == "joggle":
            return f"{label}: reached joggle ({res.escalations})"
        if not family.full_dim and res.mode != "sos":
            return f"{label}: expected sos rung, got {res.mode}"
        # The verifier must reject a corrupted copy of the (verified)
        # certificate robust_hull just produced.
        mode = CORRUPTION_MODES[int(rng.integers(0, len(CORRUPTION_MODES)))]
        corrupted = corrupt_certificate(res.certificate, mode, seed=seed)
        try:
            verify_certificate(corrupted, pts)
            return f"{label}: corrupted certificate ({mode}) was accepted"
        except CertificateError:
            pass
        # Canonical SoS hull: all execution disciplines must agree on
        # the facet set (over original indices) for one insertion order.
        n = len(pts)
        order = np.random.default_rng(seed + 1).permutation(n)
        with sos_mode():
            ref = None
            for ex, mm in (
                (SerialExecutor(), "dict"),
                (RoundExecutor(), "dict"),
                (ThreadExecutor(2), "cas"),
            ):
                run = parallel_hull(pts, order=order.copy(), executor=ex, multimap=mm)
                validate_hull(run.facets, run.points)
                fs = facet_sets_global(run.facets, run.order)
                if ref is None:
                    ref = fs
                elif fs != ref:
                    return (f"{label}: SoS facet set differs under "
                            f"{type(ex).__name__}")
    except Exception as exc:  # noqa: BLE001 - fuzzing surface
        return f"{label}: exception {type(exc).__name__}: {exc}"
    return None


def one_kernel_case(rng: np.random.Generator, verbose: bool) -> str | None:
    """Fuzz one (input, dimension, filter-threshold) triple through the
    batched kernels; returns an error description or None."""
    from repro.geometry.kernels import filter_scale, orient_batch
    from repro.geometry.predicates import orient

    name, gen, dims = GENERATORS[int(rng.integers(0, len(GENERATORS)))]
    d = int(rng.choice(dims))
    n = int(rng.integers(d + 2, 100 if d < 4 else 50))
    seed = int(rng.integers(0, 2**31))
    # Random envelope inflation (1x .. 1000x): fallbacks may only grow,
    # results may never change.
    env_scale = float(10.0 ** rng.uniform(0.0, 3.0))
    label = f"kernels[{name}](n={n}, d={d}, seed={seed}, env={env_scale:.1f}x)"
    if verbose:
        print(f"  {label}")
    pts = gen(n, d, seed=seed)
    order = np.random.default_rng(seed + 1).permutation(n)
    try:
        seq = sequential_hull(pts, order=order.copy(), kernel="scalar")
        ref = facet_sets_global(seq.facets, seq.order)
        with filter_scale(env_scale):
            batch_seq = sequential_hull(pts, order=order.copy(), kernel="batch")
            if facet_sets_global(batch_seq.facets, batch_seq.order) != ref:
                return f"{label}: batch sequential differs from scalar"
            if batch_seq.counters.as_dict() != seq.counters.as_dict():
                return (f"{label}: counters differ: {batch_seq.counters.as_dict()} "
                        f"vs {seq.counters.as_dict()}")
            ex = [SerialExecutor(), RoundExecutor(), ThreadExecutor(2)][
                int(rng.integers(0, 3))
            ]
            mm = "cas" if isinstance(ex, ThreadExecutor) else "dict"
            try:
                par = parallel_hull(pts, order=order.copy(), executor=ex,
                                    multimap=mm, kernel="batch")
            except MultimapFullError:
                # Fixed-capacity table overflow is a property of the
                # input (quartic facet counts on d=4 moment curves), not
                # of the engine: scalar must overflow identically.
                try:
                    parallel_hull(pts, order=order.copy(), executor=ex,
                                  multimap=mm, kernel="scalar")
                    return f"{label}: only the batch engine overflowed the multimap"
                except MultimapFullError:
                    par = None
            if par is not None:
                validate_hull(par.facets, par.points)
                if facet_sets_global(par.facets, par.order) != ref:
                    return f"{label}: batch parallel[{type(ex).__name__}] differs"

            pp = point_parallel_hull(pts, order=order.copy(), kernel="batch")
            if facet_sets_global(pp.facets, pp.order) != ref:
                return f"{label}: batch point-parallel differs"

            # Predicate-level sample: a random block must agree sign-for-
            # sign with the scalar oracle under the inflated envelope.
            k = min(n - d, 6)
            rows = np.stack([rng.choice(n, size=d, replace=False) for _ in range(k)])
            simplices = pts[rows]
            queries = pts[rng.choice(n, size=min(n, 12), replace=False)]
            got = orient_batch(simplices, queries)
            for f in range(simplices.shape[0]):
                for q in range(queries.shape[0]):
                    want = orient(simplices[f], queries[q])
                    if got[f, q] != want:
                        return (f"{label}: orient_batch[{f},{q}] = {got[f, q]} "
                                f"!= orient {want}")
    except Exception as exc:  # noqa: BLE001 - fuzzing surface
        return f"{label}: exception {type(exc).__name__}: {exc}"
    return None


def one_noisy_case(rng: np.random.Generator, verbose: bool) -> str | None:
    """Fuzz one (input, p, votes, noise-seed) tuple through the noisy
    oracle; returns an error description or None.

    Three claims per case: p=0 is bit-identical to the unwrapped
    kernel; a given noise seed is exactly reproducible; and the
    certificate-gated ladder always lands on the exact oracle's hull.
    """
    from repro.geometry.noisy import NoisyKernel
    from repro.hull.robust import robust_hull

    name, gen, dims = GENERATORS[int(rng.integers(0, len(GENERATORS)))]
    d = int(rng.choice(dims))
    n = int(rng.integers(d + 2, 80 if d < 4 else 40))
    seed = int(rng.integers(0, 2**31))
    nseed = int(rng.integers(0, 2**31))
    p = float(rng.choice([0.001, 0.01, 0.05, 0.1]))
    votes = [1, 3, 5, "adaptive"][int(rng.integers(0, 4))]
    base = "batch" if rng.integers(0, 2) else "scalar"
    label = (f"noisy[{name}](n={n}, d={d}, seed={seed}, p={p}, "
             f"votes={votes}, base={base}, nseed={nseed})")
    if verbose:
        print(f"  {label}")
    pts = gen(n, d, seed=seed)
    order = np.random.default_rng(seed + 1).permutation(n)
    try:
        ref = sequential_hull(pts, order=order.copy(), kernel=base)
        ref_keys = facet_sets_global(ref.facets, ref.order)

        # p=0: the wrapper must be a bit-identical no-op.
        zero = sequential_hull(
            pts, order=order.copy(),
            kernel=NoisyKernel(p=0.0, votes=votes, seed=nseed, base=base),
        )
        if facet_sets_global(zero.facets, zero.order) != ref_keys:
            return f"{label}: p=0 noisy differs from unwrapped"
        if zero.counters.as_dict() != ref.counters.as_dict():
            return f"{label}: p=0 counters differ"

        # Determinism: one noise seed, one outcome (crash type counts
        # as an outcome -- a lying oracle may break invariants).
        def raw_outcome():
            nk = NoisyKernel(p=p, votes=votes, seed=nseed, base=base)
            try:
                run = sequential_hull(pts, order=order.copy(), kernel=nk)
            except Exception as exc:  # noqa: BLE001 - fuzzing surface
                return ("crash", type(exc).__name__)
            return ("ok", facet_sets_global(run.facets, run.order))

        if raw_outcome() != raw_outcome():
            return f"{label}: same noise seed gave two different outcomes"

        # Self-healing: the ladder must land on the exact oracle's hull
        # and record how it got there.
        nk = NoisyKernel(p=p, votes=votes, seed=nseed, base=base)
        res = robust_hull(pts, seed=seed, order=order.copy(), noise=nk)
        exact = robust_hull(pts, seed=seed, order=order.copy())
        # Compare in global-index space: different surviving rungs may
        # promote/rank points differently for the same geometric hull.
        if (facet_sets_global(res.run.facets, res.run.order)
                != facet_sets_global(exact.run.facets, exact.run.order)):
            return (f"{label}: ladder hull differs from exact oracle "
                    f"(path {res.escalations})")
        if not res.escalations or not res.escalations[-1].endswith(
            (":ok", "]")
        ):
            return f"{label}: escalation path not recorded: {res.escalations}"
    except Exception as exc:  # noqa: BLE001 - fuzzing surface
        return f"{label}: exception {type(exc).__name__}: {exc}"
    return None


# Seed programs for --effects: small concurrent-container sketches in
# the analyzer's input language (bare-name primitives, tagged yields).
# Mutations knock these around; the analyzer must never crash on any
# of the resulting (usually ill-typed, often ill-formed) programs.
EFFECT_SEEDS = [
    '''
class AtomicCell:
    pass

class Mutex:
    pass

class Table:
    def __init__(self, n):
        self._mutex = Mutex()
        self._cells = [AtomicCell() for _ in range(n)]
        self._count = 0

    def step_gen(self, i):
        yield ("cas", i)
        ok = self._cells[i].compare_and_swap(None, 1)
        yield ("read", i)
        return ok, self._cells[i].load()

    def bump(self):
        with self._mutex:
            self._count += 1
''',
    '''
class AtomicFlag:
    pass

class _Slot:
    def __init__(self):
        self.taken = AtomicFlag()
        self.data = None

class Table:
    def __init__(self, n):
        self._slots = [_Slot() for _ in range(n)]

    def step_gen(self, i, v):
        yield ("tas", i)
        ok = self._slots[i].taken.test_and_set()
        yield ("write", i)
        self._slots[i].data = v
        return ok

    def _publish(self, slot, v):
        slot.data = v
''',
]

_EFFECT_TOKENS = [
    "yield ('cas', i)", "self._count += 1", "self._cells[i].load()",
    "with self._mutex:", "return", "pass", "getattr(self, name)()",
    "eval('1')", "del self._cells[i]", "lambda k: 0", "global _count",
]


def _mutate_source(src: str, rng: np.random.Generator,
                   tokens: list[str] = _EFFECT_TOKENS) -> str:
    """One random structural mutation of a source string."""
    lines = src.split("\n")
    op = int(rng.integers(0, 6))
    if not lines:
        return src
    i = int(rng.integers(0, len(lines)))
    if op == 0:  # delete a line
        del lines[i]
    elif op == 1:  # duplicate a line
        lines.insert(i, lines[i])
    elif op == 2:  # swap two lines
        j = int(rng.integers(0, len(lines)))
        lines[i], lines[j] = lines[j], lines[i]
    elif op == 3:  # splice in a random statement at a random indent
        indent = " " * int(rng.integers(0, 3)) * 4
        tok = tokens[int(rng.integers(0, len(tokens)))]
        lines.insert(i, indent + tok)
    elif op == 4:  # truncate the file
        lines = lines[:i]
    else:  # reindent a line
        lines[i] = " " * int(rng.integers(0, 9)) + lines[i].lstrip()
    return "\n".join(lines)


# Seed programs for --hotpath: small NumPy kernel sketches in the
# hot-path analyzer's input language (kernel= entries, shape
# annotations, per-element loops, noqa comments).  Mutations produce
# ill-formed shape claims, dangling annotations, and broken hot-region
# edges; the analyzer must never crash on any of them.
HOTPATH_SEEDS = [
    '''
import numpy as np

def orient_rows(simplices, queries):
    # repro: shape: simplices=(F,d,d):float64, queries=(Q,d):float64
    return np.einsum("fij,qj->fq", simplices, queries)

def driver(points, kernel="batch"):
    facets = []
    for i in range(len(points)):
        row = orient_rows(points[i], points)
        facets.append(row)
    return np.stack(facets)
''',
    '''
import numpy as np

def side(plane, point):
    acc = 0.0
    for j in range(len(point)):
        acc += plane[j] * point[j]
    return acc

def sweep(planes, pts, kernel="batch"):
    out = np.zeros((len(planes), len(pts)))
    for f in range(len(planes)):
        for q in range(len(pts)):
            out[f, q] = side(planes[f], pts[q])
    return out
''',
]

_HOTPATH_TOKENS = [
    "x = np.zeros((F, d))", "rows.append(row)", "# repro: shape: z=(N,):float64",
    "# repro: noqa: RPRHOT001", "# repro: hot-entry", "y = np.array(v, dtype=object)",
    "z = np.einsum('ij,jk->ik', a, b)", "kernel = 'batch'", "return np.stack(rows)",
    "for facet in facets:", "del rows", "w = a + b",
]


def one_hotpath_case(rng: np.random.Generator, verbose: bool) -> str | None:
    """Fuzz the hot-path analyzer: random mutations of seed kernels
    must never crash shape inference or the hot-region walk, and the
    output must stay well-formed (findings format and JSON round-trip;
    syntax errors surface as RPRHOT999 pseudo-findings)."""
    from repro.analyze import Finding
    from repro.analyze.hotpath import analyze_hotpaths, render_hot_text

    seed_ix = int(rng.integers(0, len(HOTPATH_SEEDS)))
    src = HOTPATH_SEEDS[seed_ix]
    tokens = _HOTPATH_TOKENS
    n_mut = int(rng.integers(1, 8))
    for _ in range(n_mut):
        src = _mutate_source(src, rng, tokens=tokens)
    label = f"hotpath[seed={seed_ix}, mutations={n_mut}]"
    if verbose:
        print(f"  {label}")
    try:
        result = analyze_hotpaths([], sources={"fuzz_mutant.py": src})
        for f in result.findings + result.suppressed:
            assert f.format()
            assert Finding.from_dict(f.as_dict()) == f
        for chain in result.hot.values():
            assert isinstance(chain, str)
        assert isinstance(render_hot_text(result), str)
        assert len(result.suppressions()) >= 0
    except Exception as exc:  # noqa: BLE001 - fuzzing surface
        return (f"{label}: analyzer crashed with "
                f"{type(exc).__name__}: {exc}\n--- mutant ---\n{src}")
    return None


# Seed programs for --fpcheck: annotated kernel sketches in the
# fp-filter analyzer's input language (fp-bound clause blocks, claims,
# guards, envelopes).  Mutations produce mangled clause grammar,
# orphaned claims, contradictory pins, and broken arithmetic; the
# analyzer must degrade to RPRFP999 findings, never crash.
FPCHECK_SEEDS = [
    '''
import numpy as np

def planes(simplices):
    # repro: fp-bound: assume d in 2..3
    # repro: fp-bound: in simplices ~ S
    # repro: fp-bound: fact NRM <= 6*H
    # repro: fp-bound: out normals ~ NRM err 6*H
    p0 = simplices[:, :1, :]
    # repro: fp-bound: bind p0 ~ B
    edges = simplices[:, 1:, :] - p0
    # repro: fp-bound: bind edges ~ R0
    normals = np.cross(edges[:, 0, :], edges[:, 1, :])
    # repro: fp-bound: bind normals ~ NRM
    offsets = np.einsum("fd,fd->f", normals, p0[:, 0, :])
    # repro: fp-bound: claim offsets <= 6*d*H*B + 2*d^2*NRM*B
    return normals, offsets
''',
    '''
def decide(margin, env, scale):
    # repro: fp-bound: in margin ~ M err 3*M
    # repro: fp-bound: guard env
    # repro: fp-bound: envelope env scale
    env = env * 2.0
    if abs(margin) > env:
        if margin > 0.0:
            return 1
        return -1
    return 0
''',
]

_FPCHECK_TOKENS = [
    "# repro: fp-bound: claim x <= 3*H", "# repro: fp-bound: in q ~ Q",
    "# repro: fp-bound: fact NRM <= 6*H", "# repro: fp-bound: guard env",
    "# repro: fp-bound: assume d in 2..3", "# repro: fp-bound: envelope env",
    "# repro: fp-bound: bind z ~", "# repro: fp-bound: claim <= H",
    "# repro: fp-bound: fact 2*X <=", "# repro: fp-bound: assume d in 9..2",
    "# repro: fp-bound: wibble q r", "# repro: fp-bound: out y ~ Y err 6*",
    "env = env * 0.5", "margins = margins - offs", "x = a @ b",
    "# repro: noqa: RPRFP002", "return margin > 0.0",
]


def one_fpcheck_case(rng: np.random.Generator, verbose: bool) -> str | None:
    """Fuzz the fp-filter analyzer: random mutations of annotated
    kernel sketches -- including mangled ``fp-bound:`` clause tokens --
    must never crash the error-domain walk, and the output must stay
    well-formed (findings format and JSON round-trip; grammar damage
    surfaces as RPRFP999 pseudo-findings, not exceptions)."""
    from repro.analyze import Finding
    from repro.analyze.fpcheck import analyze_fpcheck, render_fp_text

    seed_ix = int(rng.integers(0, len(FPCHECK_SEEDS)))
    src = FPCHECK_SEEDS[seed_ix]
    n_mut = int(rng.integers(1, 8))
    for _ in range(n_mut):
        src = _mutate_source(src, rng, tokens=_FPCHECK_TOKENS)
    label = f"fpcheck[seed={seed_ix}, mutations={n_mut}]"
    if verbose:
        print(f"  {label}")
    try:
        result = analyze_fpcheck([], sources={"fuzz_mutant.py": src})
        for f in result.findings + result.suppressed:
            assert f.format()
            assert Finding.from_dict(f.as_dict()) == f
        for c in result.claims:
            assert isinstance(c.ok, bool) and c.line >= 1
        assert isinstance(render_fp_text(result, verbose=True), str)
        assert len(result.suppressions()) >= 0
    except Exception as exc:  # noqa: BLE001 - fuzzing surface
        return (f"{label}: analyzer crashed with "
                f"{type(exc).__name__}: {exc}\n--- mutant ---\n{src}")
    return None


def one_effects_case(rng: np.random.Generator, verbose: bool) -> str | None:
    """Fuzz the static effect analyzer: random mutations of seed
    programs must never crash it, and its output must stay well-formed
    (every finding formats and JSON round-trips; syntax errors surface
    as RPREFF999 pseudo-findings, not exceptions)."""
    from repro.analyze import Finding, analyze_paths

    seed_ix = int(rng.integers(0, len(EFFECT_SEEDS)))
    src = EFFECT_SEEDS[seed_ix]
    n_mut = int(rng.integers(1, 8))
    for _ in range(n_mut):
        src = _mutate_source(src, rng)
    label = f"effects[seed={seed_ix}, mutations={n_mut}]"
    if verbose:
        print(f"  {label}")
    try:
        result = analyze_paths([], sources={"fuzz_mutant.py": src})
        for f in result.findings + result.suppressed:
            assert f.format()
            assert Finding.from_dict(f.as_dict()) == f
        # the site inventory must be enumerable too
        for s in result.sites():
            assert s.as_dict()["line"] >= 1
    except Exception as exc:  # noqa: BLE001 - fuzzing surface
        return (f"{label}: analyzer crashed with "
                f"{type(exc).__name__}: {exc}\n--- mutant ---\n{src}")
    return None


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--iterations", type=int, default=100)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--verbose", action="store_true")
    ap.add_argument("--chaos", action="store_true",
                    help="fuzz (input, schedule, fault plan) triples instead")
    ap.add_argument("--chaos-proc", action="store_true",
                    help="fuzz the supervised process executor with "
                         "random (input, fault plan, worker count) triples")
    ap.add_argument("--degenerate", action="store_true",
                    help="fuzz the adversarial degenerate corpus instead")
    ap.add_argument("--kernels", action="store_true",
                    help="fuzz the batched predicate kernels instead")
    ap.add_argument("--noisy", action="store_true",
                    help="fuzz the noisy-oracle ladder with random "
                         "(input, p, votes, seed) tuples instead")
    ap.add_argument("--effects", action="store_true",
                    help="fuzz the static effect analyzer on mutated "
                         "fixture programs instead")
    ap.add_argument("--hotpath", action="store_true",
                    help="fuzz the vectorization hot-path analyzer on "
                         "mutated kernel sketches instead")
    ap.add_argument("--fpcheck", action="store_true",
                    help="fuzz the fp-filter-soundness analyzer on "
                         "mutated annotated kernel sketches instead")
    ap.add_argument("--duration", type=float, default=None, metavar="SECS",
                    help="run until the wall-clock budget expires "
                         "(overrides --iterations)")
    args = ap.parse_args()
    rng = np.random.default_rng(args.seed)
    if args.chaos:
        cases = (one_chaos_case,)
    elif args.chaos_proc:
        cases = (one_chaos_proc_case,)
    elif args.degenerate:
        cases = (one_degenerate_case,)
    elif args.kernels:
        cases = (one_kernel_case,)
    elif args.noisy:
        cases = (one_noisy_case,)
    elif args.effects:
        cases = (one_effects_case,)
    elif args.hotpath:
        cases = (one_hotpath_case,)
    elif args.fpcheck:
        cases = (one_fpcheck_case,)
    else:
        cases = (one_case, one_multimap_case)
    deadline = None if args.duration is None else time.monotonic() + args.duration
    failures = 0
    i = 0
    while True:
        if deadline is None:
            if i >= args.iterations:
                break
        elif time.monotonic() >= deadline:
            break
        for case in cases:
            err = case(rng, args.verbose)
            if err is not None:
                print(f"FAIL [{i}]: {err}")
                failures += 1
        i += 1
        if i % 20 == 0 and not args.verbose and not failures:
            print(f"  ... {i} iterations ok")
    kind = ("chaos" if args.chaos
            else "chaos-proc" if args.chaos_proc
            else "degenerate" if args.degenerate
            else "kernels" if args.kernels
            else "noisy" if args.noisy
            else "effects" if args.effects
            else "hotpath" if args.hotpath
            else "fpcheck" if args.fpcheck else "differential")
    if failures:
        print(f"{failures} failing cases out of {i} {kind} iterations")
        return 1
    print(f"all {i} {kind} iterations agree")
    return 0


if __name__ == "__main__":
    sys.exit(main())
