"""Regenerate the measurement tables of EXPERIMENTS.md.

Run:  python tools/make_report.py [--quick]

Prints every experiment's table to stdout in the order of
EXPERIMENTS.md so results can be refreshed or checked on a new machine.
Seeds are fixed; only wall-clock figures vary.
"""

from __future__ import annotations

import math
import sys

import numpy as np

ROOT_HINT = "run from the repository root after `pip install -e .`"


def banner(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def e1_depth(quick: bool) -> None:
    from repro.analysis import measure_hull_depths
    from repro.configspace.theory import harmonic

    banner("E1 -- dependence depth is O(log n) whp (Thms 1.1/4.2/5.3)")
    ns = [64, 256, 1024] if quick else [64, 256, 1024, 4096]
    for d, seeds in ((2, 10), (3, 5)):
        camp = measure_hull_depths(ns, d, range(2 if quick else seeds))
        print(f"d={d} (uniform ball):")
        for s in camp.samples:
            print(f"  n={s.n:5d} mean={s.mean_depth:6.2f} max={s.max_depth:3d} "
                  f"sigma={s.depth_over_harmonic:5.2f}")


def e2_work(quick: bool) -> None:
    from repro.analysis import work_scaling
    from repro.geometry import uniform_ball

    banner("E2 -- parallel == sequential work (Thm 5.4)")
    ns = [512, 2048] if quick else [512, 2048, 8192]
    for row in work_scaling(ns, 2, uniform_ball, seed=3):
        print(f"  n={row['n']:5d} seq={row['seq_tests']:7d} par={row['par_tests']:7d} "
              f"ratio={row['ratio']:.4f} same_created={row['same_created']} "
              f"tests/nlogn={row['tests_per_nlogn']}")


def e3_span(quick: bool) -> None:
    from repro.analysis import crcw_span
    from repro.geometry import on_sphere
    from repro.hull import parallel_hull

    banner("E3 -- span: rounds/log2n flat; S/log2^2 n flat; CRCW accounting")
    ns = [256, 1024] if quick else [256, 1024, 4096]
    for n in ns:
        run = parallel_hull(on_sphere(n, 2, seed=n), seed=5)
        rep = crcw_span(run)
        print(f"  n={n:5d} rounds={run.exec_stats.rounds:3d} "
              f"rounds/log2n={run.exec_stats.rounds / math.log2(n):.2f} "
              f"W={run.tracker.work:7d} S={run.tracker.span:4d} "
              f"S/log2^2n={run.tracker.span / math.log2(n) ** 2:.2f} "
              f"CRCW span={rep.span_rounds} per-round={rep.span_per_round:.1f}")


def e4_figure1() -> None:
    from repro.geometry import figure1_points
    from repro.hull import parallel_hull

    banner("E4 -- Figure 1 walkthrough")
    pts, labels = figure1_points()
    run = parallel_hull(pts, order=np.arange(10), base_size=7)
    creates = {}
    for e in run.events:
        if e.kind == "create":
            f = next(x for x in run.created if x.fid == e.created)
            creates.setdefault(e.round + 1, []).append(
                "-".join(labels[i] for i in f.indices)
            )
    for rnd, names in sorted(creates.items()):
        print(f"  round {rnd} creates: {sorted(names)}")
    print(f"  rounds={run.exec_stats.rounds} depth={run.dependence_depth()}")


def e5_e10_support(quick: bool) -> None:
    from repro.configspace import check_k_support
    from repro.configspace.spaces import (
        HullFacetSpace,
        HullRidgeSpace,
        HalfplaneSpace,
        UnitCircleArcSpace,
        clustered_unit_circles,
        tangent_halfplanes,
    )
    from repro.geometry import uniform_ball

    banner("E5/E8/E9/E10 -- k-support certification")
    n = 9 if quick else 10
    jobs = [
        ("hull facets d=2 (Thm 5.1)", HullFacetSpace(uniform_ball(n, 2, seed=1))),
        ("hull facets d=3 (Thm 5.1)", HullFacetSpace(uniform_ball(8, 3, seed=2))),
        ("hull ridges (S7)", HullRidgeSpace(uniform_ball(n, 2, seed=3))),
        ("half-planes+rays (S7)", HalfplaneSpace(*tangent_halfplanes(n, seed=4))),
        ("unit circles (S7)", UnitCircleArcSpace(clustered_unit_circles(8, seed=5))),
    ]
    for label, space in jobs:
        rep = check_k_support(space, range(space.n_objects))
        print(f"  {label:30s} checked={rep.checked:4d} ok={rep.ok} "
              f"max support={rep.max_support_size()} (claimed k={space.support_k})")


def e7_corners() -> None:
    from repro.configspace import check_k_support
    from repro.configspace.spaces import CornerConfigSpace

    banner("E7 -- degenerate 3D corners (Lemmas 6.1/6.2)")
    base = np.array([[x, y, z] for x in (0.0, 2) for y in (0.0, 2) for z in (0.0, 2)])
    extras = np.array([[1.0, 1, 0], [1, 0, 1], [0, 1, 1]])
    pts = np.vstack([base, extras])
    space = CornerConfigSpace(pts)
    Y = list(range(len(pts)))
    active = {c.key() for c in space.active_set(Y)}
    geo = space.hull_corners(Y)
    rep = check_k_support(space, Y, k=4)
    print(f"  Lemma 6.1 (active == corners): {active == geo} ({len(active)} corners)")
    print(f"  Lemma 6.2 (4-support): ok={rep.ok} checked={rep.checked} "
          f"max={rep.max_support_size()}")


def e11_multimap() -> None:
    from repro.runtime import CASMultimap, TASMultimap, run_interleaved

    banner("E11 -- Thms A.1/A.2 under randomized interleavings")
    for name, cls in (("CAS (Alg 4)", CASMultimap), ("TAS (Alg 5)", TASMultimap)):
        violations = 0
        for seed in range(300):
            m = cls(capacity=8, hash_fn=lambda k: 0)
            res = run_interleaved(
                {"p": lambda m=m: m.insert_and_set_steps("r", "t1"),
                 "q": lambda m=m: m.insert_and_set_steps("r", "t2")},
                seed=seed,
            )
            if sorted([res["p"].value, res["q"].value]) != [False, True]:
                violations += 1
        print(f"  {name}: 300 adversarial interleavings, violations={violations}")


def e13_speedup(quick: bool) -> None:
    from repro.analysis import speedup_table
    from repro.geometry import on_sphere
    from repro.hull import parallel_hull
    from repro.runtime.forkjoin import simulate_work_stealing

    banner("E13 -- speedup (work-span model + work stealing)")
    n = 1000 if quick else 2000
    run = parallel_hull(on_sphere(n, 2, seed=10), seed=11)
    for row in speedup_table(run, [1, 4, 16, 64]):
        print(f"  P={row['P']:3d} greedy={row['speedup']:6.2f} "
              f"model={row['model_speedup']:6.2f}")
    for p in (2, 4, 8):
        st = simulate_work_stealing(run.tracker, p, seed=p)
        print(f"  work-stealing P={p}: speedup="
              f"{run.tracker.work / st.makespan:5.2f} steals={st.steals}")


def e15_point_parallel(quick: bool) -> None:
    from repro.geometry import on_sphere, uniform_ball
    from repro.hull import parallel_hull
    from repro.hull.point_parallel import point_parallel_hull

    banner("E15 -- Algorithm 3 vs the point-parallel practice baseline")
    ns = [256, 1024] if quick else [256, 1024, 4096]
    for gen, label in ((uniform_ball, "ball"), (on_sphere, "sphere")):
        for n in ns:
            pts = gen(n, 2, seed=n)
            order = np.random.default_rng(1).permutation(n)
            pp = point_parallel_hull(pts, order=order.copy())
            par = parallel_hull(pts, order=order.copy())
            print(f"  {label:6s} n={n:5d}: point-parallel rounds={pp.rounds:3d}  "
                  f"Alg3 depth={par.dependence_depth():3d}")


def e14_trilogy(quick: bool) -> None:
    from repro.apps import bowyer_watson, delaunay
    from repro.apps.parallel_delaunay import parallel_delaunay
    from repro.apps.parallel_halfplanes import parallel_halfplanes
    from repro.apps import incremental_halfplanes
    from repro.configspace.spaces import tangent_halfplanes
    from repro.geometry import uniform_ball

    banner("E14+ -- one engine, three problems (hull / Delaunay / half-planes)")
    n = 300 if quick else 800
    pts = uniform_ball(n, 2, seed=14)
    order = np.random.default_rng(15).permutation(n)
    bw = bowyer_watson(pts, order=order.copy())
    pd = parallel_delaunay(pts, order=order.copy())
    lifted = delaunay(pts, order=order.copy())
    print(f"  Delaunay n={n}: lifted/BW/parallel agree="
          f"{lifted.triangles == bw.triangles == pd.triangles}; "
          f"identical in-circle tests={pd.in_circle_tests == bw.in_circle_tests}; "
          f"parallel depth={pd.dependence_depth()}")
    normals, offsets = tangent_halfplanes(n, seed=16)
    horder = np.random.default_rng(17).permutation(n)
    seqh = incremental_halfplanes(normals, offsets, order=horder.copy())
    parh = parallel_halfplanes(normals, offsets, order=horder.copy())
    same = {frozenset(p) for p in seqh.vertex_pairs} == {
        frozenset(p) for p in parh.vertex_pairs}
    print(f"  half-planes n={n}: sequential/parallel agree={same}; "
          f"parallel depth={parh.dependence_depth()}")


def main() -> None:
    quick = "--quick" in sys.argv
    e1_depth(quick)
    e2_work(quick)
    e3_span(quick)
    e4_figure1()
    e5_e10_support(quick)
    e7_corners()
    e11_multimap()
    e13_speedup(quick)
    e15_point_parallel(quick)
    e14_trilogy(quick)
    print("\ndone; see EXPERIMENTS.md for interpretation against the paper.")


if __name__ == "__main__":
    main()
